//! # ugraph-sampling — possible-world sampling and reliability oracles
//!
//! Monte-Carlo machinery for estimating **connection probabilities**
//! (two-terminal reliabilities) on uncertain graphs, as required by the
//! clustering algorithms of *Clustering Uncertain Graphs* (Ceccarello et
//! al., VLDB 2017, §2 and §4).
//!
//! Exact computation of `Pr(u ~ v)` is #P-complete, so the paper estimates
//! it by sampling `r` independent possible worlds `G_1, …, G_r` and counting
//! in how many of them `u` and `v` are connected (Eq. 3). This crate
//! provides:
//!
//! * deterministic, thread-count-independent [`WorldSampler`]s — sample `i`
//!   is always generated from the same per-index RNG stream;
//! * the [`WorldEngine`] backend seam with interchangeable, count-identical
//!   implementations selected by [`EngineKind`]:
//!   [`ComponentPool`] (scalar; per-sample connected-component labels with
//!   membership lists, supporting `counts_from_center` in time proportional
//!   to the size of the center's components, not `n·r`),
//!   [`WorldPool`] (scalar; per-sample edge bitsets for **depth-limited**
//!   d-connection probabilities of paper §3.4, evaluated by bounded BFS),
//!   and [`BitParallelPool`] (64 worlds per machine word as
//!   structure-of-arrays edge masks, queried by mask-propagating
//!   multi-world BFS — one traversal answers 64 worlds);
//! * [`ExactOracle`]: exhaustive possible-world enumeration for small
//!   graphs, used to validate the estimators and for tiny-instance
//!   optimality tests;
//! * sample-size [`bounds`]: the `(ε, δ)` bound of Eq. 4 and the progressive
//!   schedules of Eq. 9 / Eq. 10, plus the paper's *practical* 50-sample
//!   starting schedule (§5);
//! * the [`Oracle`] trait consumed by the clustering algorithms, with
//!   Monte-Carlo implementations built on the engine seam;
//! * the shared parallel-dispatch [`tuning`] heuristics used by every
//!   backend;
//! * sharded, memory-budgeted storage ([`budget`]): every backend
//!   allocates in [`SHARD_WORLDS`]-world shards charged against a shared
//!   [`MemoryBudget`]; under pressure, least-recently-used shards are
//!   evicted and later regenerated **bit-identically** from their
//!   per-index RNG streams;
//! * cooperative interruption ([`interrupt`]): a [`RunBudget`] of
//!   wall-clock deadlines and shareable [`CancelToken`]s, polled through
//!   a [`RunState`] at shard/block checkpoints in generation, sweeps,
//!   and label finalization — one relaxed atomic load per block, results
//!   bit-identical whenever no interruption fires;
//! * deterministic failpoints ([`faults`], cargo feature
//!   `fault-injection`, on by default): a [`FaultPlan`] fails the nth
//!   shard regeneration, pool growth, dataset read, or row-cache
//!   admission with a typed [`SamplingError::FaultInjected`] so tests
//!   can assert the error paths roll back cleanly.
//!
//! ## Example: estimating a reliability
//!
//! ```
//! use ugraph_graph::{GraphBuilder, NodeId};
//! use ugraph_sampling::{ComponentPool, ExactOracle};
//!
//! let mut b = GraphBuilder::new(3);
//! b.add_edge(0, 1, 0.5).unwrap();
//! b.add_edge(1, 2, 0.5).unwrap();
//! let g = b.build().unwrap();
//!
//! // Exact: Pr(0 ~ 2) = 0.25 (both edges must exist).
//! let exact = ExactOracle::new(&g).unwrap();
//! assert!((exact.pair_probability(NodeId(0), NodeId(2)) - 0.25).abs() < 1e-12);
//!
//! // Monte-Carlo converges to the same value.
//! let mut pool = ComponentPool::new(&g, 42, 1);
//! pool.ensure(4000);
//! let est = pool.pair_estimate(NodeId(0), NodeId(2));
//! assert!((est - 0.25).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as typed errors, not panics; tests,
// benches, and doctests (separate crates / cfg(test) builds) may unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bounds;
pub mod budget;
pub mod engine;
pub mod error;
pub mod exact;
pub mod faults;
pub mod interrupt;
pub mod oracle;
pub mod pool;
pub mod queries;
pub mod representative;
pub mod rng;
pub mod tuning;
pub mod world;

pub use bounds::{harmonic, SampleSchedule};
pub use budget::{ChargeGuard, MemoryBudget, MemoryStats};
pub use engine::{BlockWidth, EngineKind, EngineStats, WorldEngine, DEPTH_UNLIMITED};
pub use error::{SamplingError, SamplingPhase};
pub use exact::ExactOracle;
pub use faults::{FaultPlan, FaultSite};
pub use interrupt::{CancelToken, Interrupt, RunBudget, RunState};
pub use oracle::{DepthMcOracle, ExactOracleAdapter, McOracle, Oracle, RowCacheStats};
pub use pool::{BitParallelPool, ComponentPool, WorldPool, SHARD_BLOCKS, SHARD_WORLDS};
pub use queries::{
    assignment_probs, most_reliable_source, quality_from_probs, reliability_knn,
    reliability_knn_within, SourceObjective,
};
pub use representative::{average_degree_representative, most_probable_world};
pub use rng::sample_rng;
pub use world::WorldSampler;
