//! Sampling possible worlds.
//!
//! A possible world of `G = (V, E, p)` keeps each edge `e` independently
//! with probability `p(e)`. Two materializations are supported:
//!
//! * an **edge bitset** ([`WorldSampler::sample_into`]) — needed when the
//!   world's topology is traversed (depth-limited BFS);
//! * **fused component labels** ([`WorldSampler::sample_components`]) — the
//!   common case for unlimited connection probabilities, where the world
//!   itself is never needed, only its connected-component partition; the
//!   edge draws feed a union-find directly and the bitset is skipped.

use rand::Rng;

use ugraph_graph::{Bitset, Mask, UncertainGraph, UnionFind};

use crate::error::SamplingError;
use crate::rng::sample_rng;

/// Stateless sampler bound to a graph and a master seed.
#[derive(Clone, Copy, Debug)]
pub struct WorldSampler<'g> {
    graph: &'g UncertainGraph,
    seed: u64,
}

impl<'g> WorldSampler<'g> {
    /// Creates a sampler for `graph` under `seed`.
    pub fn new(graph: &'g UncertainGraph, seed: u64) -> Self {
        WorldSampler { graph, seed }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g UncertainGraph {
        self.graph
    }

    /// Draws world `index` into `out` (one bit per [`ugraph_graph::EdgeId`]).
    ///
    /// # Errors
    /// Returns [`SamplingError::BufferMismatch`] if `out.len() != m`.
    pub fn sample_into(&self, index: u64, out: &mut Bitset) -> Result<(), SamplingError> {
        if out.len() != self.graph.num_edges() {
            return Err(SamplingError::BufferMismatch {
                what: "world bitset",
                expected: self.graph.num_edges(),
                got: out.len(),
            });
        }
        out.clear();
        let mut rng = sample_rng(self.seed, index);
        for (i, &p) in self.graph.probs().iter().enumerate() {
            // `gen::<f64>() < p` is the standard Bernoulli draw; for p = 1.0
            // it always succeeds since gen() is in [0, 1).
            if rng.gen::<f64>() < p {
                out.insert(i);
            }
        }
        Ok(())
    }

    /// Draws world `index` into bit `lane` of the per-edge mask words:
    /// after the call, `masks[e] & (1 << lane)` is set iff edge `e` exists
    /// in world `index`. Other lanes of `masks` are left untouched, so a
    /// 64-world block is assembled lane by lane — each lane from its own
    /// per-index RNG stream, which keeps bit-parallel pools world-for-world
    /// identical to scalar pools under the same master seed.
    ///
    /// # Errors
    /// Returns [`SamplingError::BufferMismatch`] if `masks.len() != m`.
    ///
    /// # Panics
    /// Panics if `lane >= 64`.
    pub fn sample_lane(
        &self,
        index: u64,
        lane: usize,
        masks: &mut [u64],
    ) -> Result<(), SamplingError> {
        assert!(lane < ugraph_graph::LANES, "lane {lane} out of range");
        if masks.len() != self.graph.num_edges() {
            return Err(SamplingError::BufferMismatch {
                what: "edge-mask buffer",
                expected: self.graph.num_edges(),
                got: masks.len(),
            });
        }
        let mut rng = sample_rng(self.seed, index);
        // Branchless store: at p ≈ 0.5 a conditional write mispredicts on
        // every other edge, which dominates this RNG-bound loop's tail.
        for (mask, &p) in masks.iter_mut().zip(self.graph.probs()) {
            *mask |= ((rng.gen::<f64>() < p) as u64) << lane;
        }
        Ok(())
    }

    /// Width-generic variant of [`WorldSampler::sample_lane`]: draws world
    /// `index` into lane `lane` of a block of `W * 64` worlds (word
    /// `lane / 64`, bit `lane % 64`). The RNG stream depends only on
    /// `index`, so a block's worlds are identical at every width.
    ///
    /// # Errors
    /// Returns [`SamplingError::BufferMismatch`] if `masks.len() != m`.
    ///
    /// # Panics
    /// Panics if `lane >= W * 64`.
    pub fn sample_block_lane<const W: usize>(
        &self,
        index: u64,
        lane: usize,
        masks: &mut [Mask<W>],
    ) -> Result<(), SamplingError> {
        assert!(lane < Mask::<W>::LANES, "lane {lane} out of range");
        if masks.len() != self.graph.num_edges() {
            return Err(SamplingError::BufferMismatch {
                what: "edge-mask buffer",
                expected: self.graph.num_edges(),
                got: masks.len(),
            });
        }
        let word = lane / ugraph_graph::LANES;
        let shift = lane % ugraph_graph::LANES;
        let mut rng = sample_rng(self.seed, index);
        for (mask, &p) in masks.iter_mut().zip(self.graph.probs()) {
            mask.0[word] |= ((rng.gen::<f64>() < p) as u64) << shift;
        }
        Ok(())
    }

    /// Convenience allocating variant of [`WorldSampler::sample_into`].
    pub fn sample(&self, index: u64) -> Bitset {
        let mut b = Bitset::with_len(self.graph.num_edges());
        self.sample_into(index, &mut b)
            .unwrap_or_else(|e| unreachable!("freshly sized bitset cannot mismatch: {e}"));
        b
    }

    /// Draws world `index` and immediately reduces it to connected-component
    /// labels, without materializing the edge set. `uf` is reset internally;
    /// `labels` receives canonical labels (see
    /// [`UnionFind::component_labels_into`]). Returns the component count.
    ///
    /// # Panics
    /// Panics if `uf`/`labels` are not sized for the graph's node count.
    pub fn sample_components(&self, index: u64, uf: &mut UnionFind, labels: &mut [u32]) -> usize {
        assert_eq!(uf.len(), self.graph.num_nodes(), "union-find sized for wrong node count");
        uf.reset();
        let mut rng = sample_rng(self.seed, index);
        for (_, u, v, p) in self.graph.edges() {
            if rng.gen::<f64>() < p {
                uf.union(u.0, v.0);
            }
        }
        uf.component_labels_into(labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_graph::{GraphBuilder, NodeId, WorldView};

    fn chain(n: u32, p: f64) -> UncertainGraph {
        let mut b = GraphBuilder::new(n as usize);
        for i in 0..n - 1 {
            b.add_edge(i, i + 1, p).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn certain_edges_always_present() {
        let g = chain(5, 1.0);
        let s = WorldSampler::new(&g, 1);
        for i in 0..20 {
            let w = s.sample(i);
            assert_eq!(w.count_ones(), 4, "world {i} dropped a certain edge");
        }
    }

    #[test]
    fn sampling_is_reproducible_per_index() {
        let g = chain(30, 0.5);
        let s1 = WorldSampler::new(&g, 99);
        let s2 = WorldSampler::new(&g, 99);
        for i in 0..10 {
            assert_eq!(s1.sample(i), s2.sample(i));
        }
        let s3 = WorldSampler::new(&g, 100);
        // Different master seed gives (almost surely) different worlds.
        assert_ne!(s1.sample(0), s3.sample(0));
    }

    #[test]
    fn empirical_edge_frequency_matches_p() {
        let g = chain(2, 0.3);
        let s = WorldSampler::new(&g, 7);
        let r = 20_000;
        let mut hits = 0usize;
        let mut w = Bitset::with_len(1);
        for i in 0..r {
            s.sample_into(i, &mut w).unwrap();
            if w.get(0) {
                hits += 1;
            }
        }
        let freq = hits as f64 / r as f64;
        assert!((freq - 0.3).abs() < 0.02, "frequency {freq} too far from 0.3");
    }

    #[test]
    fn fused_components_agree_with_bitset_path() {
        let g = chain(12, 0.5);
        let s = WorldSampler::new(&g, 5);
        let mut uf = UnionFind::new(12);
        let mut labels = vec![0u32; 12];
        for i in 0..50 {
            // Path A: fused.
            let count = s.sample_components(i, &mut uf, &mut labels);
            // Path B: bitset + world view + traversal.
            let w = s.sample(i);
            let view = WorldView::new(&g, &w);
            let (view_labels, view_count) = ugraph_graph::connected_components(&view);
            assert_eq!(count, view_count, "component count mismatch in world {i}");
            assert_eq!(labels, view_labels, "labels mismatch in world {i}");
        }
    }

    #[test]
    fn sample_into_rejects_misized_buffer() {
        let g = chain(4, 0.5);
        let s = WorldSampler::new(&g, 1);
        let mut wrong = Bitset::with_len(2);
        assert_eq!(
            s.sample_into(0, &mut wrong),
            Err(crate::SamplingError::BufferMismatch { what: "world bitset", expected: 3, got: 2 })
        );
        let mut masks = vec![0u64; 2];
        assert!(s.sample_lane(0, 0, &mut masks).is_err());
    }

    #[test]
    fn sample_lane_matches_sample_into() {
        let g = chain(20, 0.4);
        let s = WorldSampler::new(&g, 123);
        let m = g.num_edges();
        let mut masks = vec![0u64; m];
        for lane in 0..8usize {
            s.sample_lane(lane as u64, lane, &mut masks).unwrap();
        }
        for lane in 0..8usize {
            let world = s.sample(lane as u64);
            for (e, mask) in masks.iter().enumerate() {
                assert_eq!(mask >> lane & 1 == 1, world.get(e), "edge {e} lane {lane} disagrees");
            }
        }
    }

    #[test]
    fn wide_block_lanes_match_narrow_lanes() {
        let g = chain(20, 0.4);
        let s = WorldSampler::new(&g, 123);
        let m = g.num_edges();
        let mut wide = vec![Mask::<4>::ZERO; m];
        // 150 worlds straddle words 0..3 of a 256-lane block.
        for lane in 0..150usize {
            s.sample_block_lane(lane as u64, lane, &mut wide).unwrap();
        }
        for lane in 0..150usize {
            let world = s.sample(lane as u64);
            for (e, mask) in wide.iter().enumerate() {
                assert_eq!(mask.get(lane), world.get(e), "edge {e} lane {lane} disagrees");
            }
        }
        let mut wrong = vec![Mask::<4>::ZERO; m - 1];
        assert!(s.sample_block_lane(0, 0, &mut wrong).is_err());
    }

    #[test]
    fn zero_edges_graph() {
        let g = GraphBuilder::new(3).build().unwrap();
        let s = WorldSampler::new(&g, 1);
        let w = s.sample(0);
        assert_eq!(w.len(), 0);
        let mut uf = UnionFind::new(3);
        let mut labels = vec![0u32; 3];
        let count = s.sample_components(0, &mut uf, &mut labels);
        assert_eq!(count, 3);
    }

    #[test]
    fn node_connectivity_probability_on_path() {
        // Pr(0 ~ 2) on a 3-chain with p=0.5 per edge is 0.25.
        let g = chain(3, 0.5);
        let s = WorldSampler::new(&g, 11);
        let mut uf = UnionFind::new(3);
        let mut labels = vec![0u32; 3];
        let r = 20_000;
        let mut hits = 0;
        for i in 0..r {
            s.sample_components(i, &mut uf, &mut labels);
            if labels[NodeId(0).index()] == labels[NodeId(2).index()] {
                hits += 1;
            }
        }
        let freq = hits as f64 / r as f64;
        assert!((freq - 0.25).abs() < 0.02, "frequency {freq} too far from 0.25");
    }
}
