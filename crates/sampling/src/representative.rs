//! Representative possible worlds.
//!
//! The paper's related work (§1.1) discusses Parchas et al. (ACM TODS
//! 2015): extracting **one deterministic graph** that summarizes an
//! uncertain graph for query processing. Two extractors are provided:
//!
//! * [`most_probable_world`] — keep every edge with `p(e) ≥ 1/2` (each
//!   edge decided by majority; this maximizes the world's probability).
//!   It systematically *underestimates* connectivity when many edges have
//!   `p < 1/2` (their collective mass vanishes) — the KPT baseline
//!   inherits exactly this weakness;
//! * [`average_degree_representative`] — the ADR idea of Parchas et al.:
//!   pick a world whose node degrees track the **expected degrees** of the
//!   uncertain graph. Edges are considered in decreasing probability and
//!   greedily included while both endpoints still fall short of their
//!   expected degree; a final pass includes any edge whose endpoints are
//!   both at least half an edge short, rounding the total edge mass to
//!   `Σ p(e)` in expectation.

use ugraph_graph::{Bitset, EdgeId, UncertainGraph};

/// The majority world: edges with `p(e) ≥ 0.5`, as a bitset over edge ids.
pub fn most_probable_world(graph: &UncertainGraph) -> Bitset {
    let mut world = Bitset::with_len(graph.num_edges());
    for (e, _, _, p) in graph.edges() {
        if p >= 0.5 {
            world.insert(e.index());
        }
    }
    world
}

/// An average-degree-preserving representative world (greedy ADR).
///
/// Guarantees: every `p = 1` edge is included; the realized degree of each
/// node never exceeds `⌈expected degree⌉`; edges enter in decreasing
/// probability (ties by edge id), so the most reliable structure is
/// preserved first.
pub fn average_degree_representative(graph: &UncertainGraph) -> Bitset {
    let n = graph.num_nodes();
    let m = graph.num_edges();
    let mut expected = vec![0.0f64; n];
    for (_, u, v, p) in graph.edges() {
        expected[u.index()] += p;
        expected[v.index()] += p;
    }
    let mut order: Vec<EdgeId> = (0..m as u32).map(EdgeId).collect();
    order.sort_by(|&a, &b| graph.prob(b).total_cmp(&graph.prob(a)).then(a.cmp(&b)));
    let mut degree = vec![0.0f64; n];
    let mut world = Bitset::with_len(m);
    for &e in &order {
        let (u, v) = graph.edge_endpoints(e);
        let p = graph.prob(e);
        // Certain edges always belong to the representative; otherwise
        // include while both endpoints still owe at least half an edge of
        // expected degree (the rounding rule of greedy ADR).
        let fits = degree[u.index()] + 0.5 <= expected[u.index()]
            && degree[v.index()] + 0.5 <= expected[v.index()];
        if p >= 1.0 || fits {
            world.insert(e.index());
            degree[u.index()] += 1.0;
            degree[v.index()] += 1.0;
        }
    }
    world
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_graph::{connected_components, GraphBuilder, WorldView};

    #[test]
    fn majority_world_thresholds_at_half() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.add_edge(2, 3, 0.49).unwrap();
        let g = b.build().unwrap();
        let w = most_probable_world(&g);
        assert_eq!(w.count_ones(), 2);
        assert!(w.get(0) && w.get(1) && !w.get(2));
    }

    #[test]
    fn adr_keeps_certain_edges() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 0.1).unwrap();
        let g = b.build().unwrap();
        let w = average_degree_representative(&g);
        assert!(w.get(0), "certain edge must be kept");
    }

    #[test]
    fn adr_edge_count_tracks_expected_mass() {
        // 40 edges at p = 0.5: expected mass 20; greedy ADR should land
        // near it (within a factor accounted by the rounding rule).
        let mut b = GraphBuilder::new(20);
        let mut count = 0;
        'outer: for u in 0..20u32 {
            for v in (u + 1)..20 {
                b.add_edge(u, v, 0.5).unwrap();
                count += 1;
                if count == 40 {
                    break 'outer;
                }
            }
        }
        let g = b.build().unwrap();
        let w = average_degree_representative(&g);
        let kept = w.count_ones() as f64;
        let expected = g.expected_edge_count();
        assert!(
            (kept - expected).abs() <= expected * 0.5 + 2.0,
            "kept {kept} vs expected mass {expected}"
        );
    }

    #[test]
    fn adr_respects_low_probability_periphery() {
        // A node with one p = 0.2 edge owes only 0.2 expected degree: the
        // greedy pass must not attach it (0 + 0.5 > 0.2).
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(1, 2, 0.2).unwrap();
        let g = b.build().unwrap();
        let w = average_degree_representative(&g);
        assert!(w.get(0));
        assert!(!w.get(1), "weak pendant edge should be dropped by ADR");
    }

    #[test]
    fn representative_worlds_are_usable_as_views() {
        // Integration: both extractors produce bitsets that traverse.
        let mut b = GraphBuilder::new(5);
        for i in 0..4 {
            b.add_edge(i, i + 1, 0.8).unwrap();
        }
        let g = b.build().unwrap();
        for world in [most_probable_world(&g), average_degree_representative(&g)] {
            let view = WorldView::new(&g, &world);
            let (_, comps) = connected_components(&view);
            assert!(comps >= 1);
        }
    }

    #[test]
    fn adr_on_reliable_chain_keeps_it_connected() {
        let mut b = GraphBuilder::new(6);
        for i in 0..5 {
            b.add_edge(i, i + 1, 0.9).unwrap();
        }
        let g = b.build().unwrap();
        let w = average_degree_representative(&g);
        let view = WorldView::new(&g, &w);
        let (_, comps) = connected_components(&view);
        assert_eq!(comps, 1, "0.9-chain should survive ADR");
    }
}
