//! Sample-size bounds and progressive sampling schedules (paper §2 and §4).

/// The `n`-th harmonic number `H(n) = Σ_{i=1..n} 1/i`.
///
/// Appears in the ACP approximation bound (Lemma 3 / Theorem 4). Computed
/// directly for small `n` and via the asymptotic expansion for large `n`
/// (absolute error < 1e-10 for n > 1000).
pub fn harmonic(n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    if n <= 1000 {
        return (1..=n).map(|i| 1.0 / i as f64).sum();
    }
    const EULER_MASCHERONI: f64 = 0.577_215_664_901_532_9;
    let nf = n as f64;
    nf.ln() + EULER_MASCHERONI + 1.0 / (2.0 * nf) - 1.0 / (12.0 * nf * nf)
}

/// Eq. 4: samples for an `(ε, δ)`-approximation of a probability `p`:
/// `r ≥ 3 ln(2/δ) / (ε² p)`.
pub fn eq4_samples(epsilon: f64, delta: f64, p: f64) -> usize {
    assert!(epsilon > 0.0 && delta > 0.0 && delta < 1.0 && p > 0.0);
    (3.0 * (2.0 / delta).ln() / (epsilon * epsilon * p)).ceil() as usize
}

/// Number of threshold guesses in the MCP schedule:
/// `1 + ⌊log_{1+γ}(1/p_L)⌋` (paper §4.2).
pub fn mcp_guess_count(gamma: f64, p_l: f64) -> usize {
    assert!(gamma > 0.0 && p_l > 0.0 && p_l <= 1.0);
    1 + ((1.0 / p_l).ln() / (1.0 + gamma).ln()).floor() as usize
}

/// Number of threshold guesses in the ACP schedule:
/// `1 + ⌊log_{1+γ}(H(n)/p_L)⌋` (paper §4.3).
pub fn acp_guess_count(gamma: f64, p_l: f64, n: usize) -> usize {
    assert!(gamma > 0.0 && p_l > 0.0 && p_l <= 1.0);
    1 + ((harmonic(n) / p_l).ln() / (1.0 + gamma).ln()).floor() as usize
}

/// Eq. 9: per-iteration sample count for the MCP implementation:
/// `r = ⌈ 12/(q ε²) · ln(2 n³ (1 + ⌊log_{1+γ} 1/p_L⌋)) ⌉`.
pub fn eq9_samples(q: f64, epsilon: f64, gamma: f64, p_l: f64, n: usize) -> usize {
    assert!(q > 0.0 && q <= 1.0 && epsilon > 0.0);
    let guesses = mcp_guess_count(gamma, p_l) as f64;
    let log_term = (2.0 * (n as f64).powi(3) * guesses).ln();
    (12.0 / (q * epsilon * epsilon) * log_term).ceil() as usize
}

/// Eq. 10: per-iteration sample count for the ACP implementation:
/// `r = ⌈ 12/(q³ ε²) · ln(2 n³ (1 + ⌊log_{1+γ} H(n)/p_L⌋)) ⌉`.
///
/// Here `q` is the ACP driver's threshold — probabilities down to `q³` must
/// be estimated (min-partial is invoked with threshold `q³`).
pub fn eq10_samples(q: f64, epsilon: f64, gamma: f64, p_l: f64, n: usize) -> usize {
    assert!(q > 0.0 && q <= 1.0 && epsilon > 0.0);
    let guesses = acp_guess_count(gamma, p_l, n) as f64;
    let log_term = (2.0 * (n as f64).powi(3) * guesses).ln();
    (12.0 / (q.powi(3) * epsilon * epsilon) * log_term).ceil() as usize
}

/// How many Monte-Carlo samples to use when the smallest probability that
/// must be estimated reliably is `q`.
///
/// The `Theory` variant follows the Eq. 9-style bound (with its union-bound
/// constants), which the paper itself notes is very conservative: §5 reports
/// that "starting the progressive sampling schedule from 50 samples always
/// yields very accurate probability estimates". The `Practical` variant
/// mirrors that implementation choice: start at `initial` samples, grow as
/// `initial/q` while the threshold decreases, and cap at `cap` to bound
/// memory/time (a deviation from pure theory that is documented in
/// DESIGN.md and EXPERIMENTS.md).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SampleSchedule {
    /// Eq. 9-style theory bound on the needed probability `q`.
    Theory {
        /// Relative-error target ε.
        epsilon: f64,
        /// Schedule parameter γ (enters the union bound's guess count).
        gamma: f64,
        /// Probability floor `p_L` (enters the union bound's guess count).
        p_l: f64,
    },
    /// The authors' practical progressive schedule.
    Practical {
        /// Starting sample count (paper: 50).
        initial: usize,
        /// Hard cap on the sample count.
        cap: usize,
    },
    /// A fixed sample count independent of `q`.
    Fixed(usize),
}

impl SampleSchedule {
    /// The paper's practical default: start at 50 samples, cap at 2048.
    pub fn practical() -> Self {
        SampleSchedule::Practical { initial: 50, cap: 2048 }
    }

    /// Samples required when probabilities `≥ q` must be estimated reliably
    /// on a graph of `n` nodes.
    pub fn samples_for(&self, q: f64, n: usize) -> usize {
        let q = q.clamp(f64::MIN_POSITIVE, 1.0);
        match *self {
            SampleSchedule::Theory { epsilon, gamma, p_l } => {
                eq9_samples(q, epsilon, gamma, p_l, n.max(2))
            }
            SampleSchedule::Practical { initial, cap } => {
                let grown = (initial as f64 / q).ceil();
                let grown = if grown.is_finite() { grown as usize } else { cap };
                grown.clamp(initial, cap.max(initial))
            }
            SampleSchedule::Fixed(r) => r,
        }
    }
}

impl Default for SampleSchedule {
    fn default() -> Self {
        SampleSchedule::practical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_small_values() {
        assert_eq!(harmonic(0), 0.0);
        assert!((harmonic(1) - 1.0).abs() < 1e-15);
        assert!((harmonic(2) - 1.5).abs() < 1e-15);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn harmonic_asymptotic_matches_direct() {
        // Compare expansion vs direct sum just above the switch point.
        let direct: f64 = (1..=2000usize).map(|i| 1.0 / i as f64).sum();
        assert!((harmonic(2000) - direct).abs() < 1e-9);
    }

    #[test]
    fn harmonic_is_increasing() {
        let mut prev = 0.0;
        for n in [1usize, 10, 100, 1000, 10_000, 1_000_000] {
            let h = harmonic(n);
            assert!(h > prev);
            prev = h;
        }
    }

    #[test]
    fn eq4_scales_inversely_with_p_and_eps_squared() {
        let base = eq4_samples(0.1, 0.01, 0.5);
        assert!(eq4_samples(0.1, 0.01, 0.25) >= 2 * base - 1);
        assert!(eq4_samples(0.05, 0.01, 0.5) >= 4 * base - 1);
        // Known value: 3 ln(200) / (0.01 * 0.5) = 600 ln 200 ≈ 3179.
        assert_eq!(eq4_samples(0.1, 0.01, 0.5), 3179);
    }

    #[test]
    fn guess_counts_match_formulas() {
        // log_{1.1}(1/1e-4) = ln(1e4)/ln(1.1) ≈ 96.6 -> 1+96 = 97.
        assert_eq!(mcp_guess_count(0.1, 1e-4), 97);
        assert!(acp_guess_count(0.1, 1e-4, 1000) > mcp_guess_count(0.1, 1e-4));
    }

    #[test]
    fn eq9_eq10_monotone_in_q() {
        let n = 1000;
        assert!(eq9_samples(0.5, 0.1, 0.1, 1e-4, n) < eq9_samples(0.1, 0.1, 0.1, 1e-4, n));
        assert!(eq10_samples(0.5, 0.1, 0.1, 1e-4, n) < eq10_samples(0.1, 0.1, 0.1, 1e-4, n));
        // ACP needs at least as many samples as MCP at the same q (1/q³ vs 1/q).
        assert!(eq10_samples(0.3, 0.1, 0.1, 1e-4, n) > eq9_samples(0.3, 0.1, 0.1, 1e-4, n));
    }

    #[test]
    fn practical_schedule_grows_and_caps() {
        let s = SampleSchedule::practical();
        assert_eq!(s.samples_for(1.0, 100), 50);
        assert_eq!(s.samples_for(0.5, 100), 100);
        assert_eq!(s.samples_for(0.01, 100), 2048); // capped (50/0.01 = 5000)
        assert_eq!(s.samples_for(1e-12, 100), 2048);
    }

    #[test]
    fn practical_schedule_grows_as_q_shrinks() {
        let s = SampleSchedule::practical();
        let mut prev = 0usize;
        for q in [1.0, 0.9, 0.5, 0.25, 0.1, 0.01, 1e-4] {
            let r = s.samples_for(q, 10);
            assert!(r >= prev, "schedule not monotone at q={q}");
            prev = r;
        }
    }

    #[test]
    fn fixed_schedule_ignores_q() {
        let s = SampleSchedule::Fixed(123);
        assert_eq!(s.samples_for(1.0, 10), 123);
        assert_eq!(s.samples_for(1e-9, 10), 123);
    }

    #[test]
    fn theory_schedule_is_large() {
        let s = SampleSchedule::Theory { epsilon: 0.1, gamma: 0.1, p_l: 1e-4 };
        // The theory bound is deliberately conservative; for q = 0.5,
        // n = 1000 it already demands tens of thousands of samples.
        let r = s.samples_for(0.5, 1000);
        assert!(r > 10_000, "theory bound suspiciously small: {r}");
    }

    #[test]
    fn default_schedule_is_practical() {
        assert_eq!(SampleSchedule::default(), SampleSchedule::practical());
    }
}
