//! Property tests for the `WorldEngine` backend seam: for any graph,
//! master seed, thread count, and sample size (multiples of 64 or not),
//! the scalar pools and the bit-parallel block pool must produce
//! **identical integer counts** for every query family — they hold the
//! same worlds, drawn from the same per-index RNG streams.

use proptest::prelude::*;
use ugraph_graph::{GraphBuilder, NodeId, UncertainGraph};
use ugraph_sampling::{BitParallelPool, ComponentPool, WorldEngine, WorldPool};

/// Strategy: a small random uncertain graph (any shape, including
/// disconnected and edgeless ones).
fn small_graph(max_n: u32, max_m: usize) -> impl Strategy<Value = UncertainGraph> {
    (2..=max_n).prop_flat_map(move |n| {
        let edge = (0..n, 0..n, 0.05f64..=1.0);
        proptest::collection::vec(edge, 0..max_m).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n as usize);
            for (u, v, p) in edges {
                if u != v {
                    b.add_edge(u, v, p).unwrap();
                }
            }
            b.build().unwrap()
        })
    })
}

/// Sample sizes straddling the 64-world block boundary: partial single
/// blocks, exact blocks, and partial trailing blocks.
fn sample_sizes() -> impl Strategy<Value = usize> {
    (0u32..4, 1usize..64).prop_map(|(kind, x)| match kind {
        0 => x,      // partial single block
        1 => 64,     // exactly one block
        2 => 128,    // exactly two blocks
        _ => 64 + x, // partial trailing block
    })
}

/// 1 worker (serial paths) or 3 workers (chunked parallel paths).
fn thread_counts() -> impl Strategy<Value = usize> {
    any::<bool>().prop_map(|b| if b { 1 } else { 3 })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Unlimited connectivity: `counts_from_center` and pair counts agree
    /// between the scalar component pool and the bit-parallel pool, for
    /// every center, across thread counts.
    #[test]
    fn center_and_pair_counts_agree(
        g in small_graph(10, 16),
        seed in any::<u64>(),
        r in sample_sizes(),
        threads in thread_counts(),
    ) {
        let n = g.num_nodes();
        let mut scalar = ComponentPool::new(&g, seed, 1);
        let mut bit = BitParallelPool::new(&g, seed, threads);
        scalar.ensure(r);
        bit.ensure(r);
        prop_assert_eq!(scalar.num_samples(), bit.num_samples());
        let mut a = vec![0u32; n];
        let mut b = vec![0u32; n];
        for c in 0..n as u32 {
            scalar.counts_from_center(NodeId(c), &mut a);
            bit.counts_from_center(NodeId(c), &mut b);
            prop_assert_eq!(&a, &b, "center {} differs (r = {}, threads = {})", c, r, threads);
        }
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                prop_assert_eq!(
                    scalar.pair_count(NodeId(u), NodeId(v)),
                    bit.pair_count(NodeId(u), NodeId(v)),
                    "pair ({}, {}) differs", u, v
                );
            }
        }
    }

    /// Depth-limited queries: `counts_within_depths` and
    /// `pair_count_within` agree between the scalar world pool and the
    /// bit-parallel pool for random depth pairs.
    #[test]
    fn depth_counts_agree(
        g in small_graph(9, 14),
        seed in any::<u64>(),
        r in sample_sizes(),
        d_select in 0u32..4,
        extra in 0u32..4,
        threads in thread_counts(),
    ) {
        let n = g.num_nodes();
        let d_cover = d_select + extra;
        let mut scalar = WorldPool::new(&g, seed, 1);
        let mut bit = BitParallelPool::new(&g, seed, threads);
        scalar.ensure(r);
        bit.ensure(r);
        let (mut s1, mut c1) = (vec![0u32; n], vec![0u32; n]);
        let (mut s2, mut c2) = (vec![0u32; n], vec![0u32; n]);
        for c in 0..n as u32 {
            scalar.counts_within_depths(NodeId(c), d_select, d_cover, &mut s1, &mut c1);
            bit.counts_within_depths(NodeId(c), d_select, d_cover, &mut s2, &mut c2);
            prop_assert_eq!(&s1, &s2, "select differs at center {} ({}, {})", c, d_select, d_cover);
            prop_assert_eq!(&c1, &c2, "cover differs at center {} ({}, {})", c, d_select, d_cover);
        }
        for v in 0..n as u32 {
            prop_assert_eq!(
                scalar.pair_count_within(NodeId(0), NodeId(v), d_cover),
                bit.pair_count_within(NodeId(0), NodeId(v), d_cover),
                "pair (0, {}) differs at depth {}", v, d_cover
            );
        }
    }

    /// Growth-schedule invariance across the block boundary: a pool grown
    /// in arbitrary uneven steps equals a pool grown in one shot, and both
    /// equal the scalar reference.
    #[test]
    fn growth_schedule_invariant_across_blocks(
        g in small_graph(8, 12),
        seed in any::<u64>(),
        steps in proptest::collection::vec(1usize..70, 1..5),
    ) {
        let n = g.num_nodes();
        let total: usize = steps.iter().sum();
        let mut stepped = BitParallelPool::new(&g, seed, 1);
        let mut reached = 0;
        for s in &steps {
            reached += s;
            stepped.ensure(reached);
        }
        let mut oneshot = BitParallelPool::new(&g, seed, 1);
        oneshot.ensure(total);
        let mut scalar = ComponentPool::new(&g, seed, 1);
        scalar.ensure(total);
        let mut a = vec![0u32; n];
        let mut b = vec![0u32; n];
        let mut c = vec![0u32; n];
        for center in 0..n as u32 {
            stepped.counts_from_center(NodeId(center), &mut a);
            oneshot.counts_from_center(NodeId(center), &mut b);
            scalar.counts_from_center(NodeId(center), &mut c);
            prop_assert_eq!(&a, &b, "stepped vs one-shot differ at center {}", center);
            prop_assert_eq!(&b, &c, "bit-parallel vs scalar differ at center {}", center);
        }
    }

    /// The trait-level estimates (the numbers the clustering algorithms
    /// actually consume) are bit-identical across backends.
    #[test]
    fn trait_estimates_identical(
        g in small_graph(8, 12),
        seed in any::<u64>(),
        r in sample_sizes(),
    ) {
        let mut scalar = ComponentPool::new(&g, seed, 1);
        let mut bit = BitParallelPool::new(&g, seed, 1);
        let engines: &mut [&mut dyn WorldEngine] = &mut [&mut scalar, &mut bit];
        for e in engines.iter_mut() {
            e.ensure(r);
        }
        let n = g.num_nodes() as u32;
        for u in 0..n {
            for v in 0..n {
                let a = engines[0].pair_estimate(NodeId(u), NodeId(v));
                let b = engines[1].pair_estimate(NodeId(u), NodeId(v));
                // Identical counts divided by identical r: exact equality.
                prop_assert_eq!(a, b, "estimate ({}, {}) differs", u, v);
            }
        }
    }
}
