//! Property tests for the `WorldEngine` backend seam: for any graph,
//! master seed, thread count, and sample size (multiples of 64 or not),
//! the scalar pools and the bit-parallel block pool must produce
//! **identical integer counts** for every query family — they hold the
//! same worlds, drawn from the same per-index RNG streams.
//!
//! The batched (`counts_from_centers`, `counts_within_depths_batch`) and
//! ranged (`counts_from_center_range`, `counts_within_depths_range`) query
//! shapes are held to the same standard: batched rows must equal the
//! sequential per-center rows, and counts accumulated over any split of
//! the pool's growth history must equal from-scratch counts — on every
//! backend, for random seeds, thread counts, and pools straddling the
//! 64-world block boundary. The oracle layer's row cache is built on
//! exactly these identities, so they are what keeps cached estimates
//! bit-identical to fresh ones.

use proptest::prelude::*;
use ugraph_graph::{GraphBuilder, NodeId, UncertainGraph};
use ugraph_sampling::{
    BitParallelPool, ComponentPool, EngineKind, McOracle, MemoryBudget, Oracle, SampleSchedule,
    WorldEngine, WorldPool, SHARD_WORLDS,
};

/// Strategy: a small random uncertain graph (any shape, including
/// disconnected and edgeless ones).
fn small_graph(max_n: u32, max_m: usize) -> impl Strategy<Value = UncertainGraph> {
    (2..=max_n).prop_flat_map(move |n| {
        let edge = (0..n, 0..n, 0.05f64..=1.0);
        proptest::collection::vec(edge, 0..max_m).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n as usize);
            for (u, v, p) in edges {
                if u != v {
                    b.add_edge(u, v, p).unwrap();
                }
            }
            b.build().unwrap()
        })
    })
}

/// Sample sizes straddling the 64-world block boundary: partial single
/// blocks, exact blocks, and partial trailing blocks.
fn sample_sizes() -> impl Strategy<Value = usize> {
    (0u32..4, 1usize..64).prop_map(|(kind, x)| match kind {
        0 => x,      // partial single block
        1 => 64,     // exactly one block
        2 => 128,    // exactly two blocks
        _ => 64 + x, // partial trailing block
    })
}

/// 1 worker (serial paths) or 3 workers (chunked parallel paths).
fn thread_counts() -> impl Strategy<Value = usize> {
    any::<bool>().prop_map(|b| if b { 1 } else { 3 })
}

/// Sample sizes straddling the 64-, 256-, and 512-world block boundaries:
/// partial tails at every supported block width, including tails that
/// populate only some words of a wide block.
fn wide_sample_sizes() -> impl Strategy<Value = usize> {
    (0u32..5, 1usize..64).prop_map(|(kind, x)| match kind {
        0 => x,       // partial first word at every width
        1 => 64 + x,  // full word + partial second (multi-word tail)
        2 => 256,     // exactly one 256-block, half a 512-block
        3 => 256 + x, // partial second 256-block
        _ => 512 + x, // partial second 512-block
    })
}

/// Runs every `WorldEngine` query family over `e` and packs the integer
/// results into one vector, so pools at different block widths can be
/// compared with a single equality check.
fn query_fingerprint(
    e: &mut dyn WorldEngine,
    centers: &[NodeId],
    d_select: u32,
    d_cover: u32,
    lo: usize,
    hi: usize,
) -> Vec<u32> {
    let n = e.graph().num_nodes();
    let k = centers.len();
    let mut fp = Vec::new();
    let mut row = vec![0u32; n];
    for &c in centers {
        e.counts_from_center(c, &mut row);
        fp.extend_from_slice(&row);
    }
    let mut batch = vec![0u32; k * n];
    e.counts_from_centers(centers, &mut batch);
    fp.extend_from_slice(&batch);
    batch.fill(0);
    e.counts_from_centers_range(centers, lo, hi, &mut batch);
    fp.extend_from_slice(&batch);
    for &c in centers {
        fp.push(e.pair_count(centers[0], c) as u32);
        fp.push(e.pair_count_within(centers[0], c, d_cover) as u32);
        fp.push(e.pair_count_range(centers[0], c, lo, hi) as u32);
    }
    let (mut s1, mut c1) = (vec![0u32; n], vec![0u32; n]);
    for &c in centers {
        e.counts_within_depths(c, d_select, d_cover, &mut s1, &mut c1);
        fp.extend_from_slice(&s1);
        fp.extend_from_slice(&c1);
    }
    let (mut bs, mut bc) = (vec![0u32; k * n], vec![0u32; k * n]);
    e.counts_within_depths_batch(centers, d_select, d_cover, &mut bs, &mut bc);
    fp.extend_from_slice(&bs);
    fp.extend_from_slice(&bc);
    bs.fill(0);
    bc.fill(0);
    e.counts_within_depths_batch_range(centers, d_select, d_cover, lo, hi, &mut bs, &mut bc);
    fp.extend_from_slice(&bs);
    fp.extend_from_slice(&bc);
    fp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Unlimited connectivity: `counts_from_center` and pair counts agree
    /// between the scalar component pool and the bit-parallel pool, for
    /// every center, across thread counts.
    #[test]
    fn center_and_pair_counts_agree(
        g in small_graph(10, 16),
        seed in any::<u64>(),
        r in sample_sizes(),
        threads in thread_counts(),
    ) {
        let n = g.num_nodes();
        let mut scalar = ComponentPool::new(&g, seed, 1);
        let mut bit = BitParallelPool::<1>::new(&g, seed, threads);
        scalar.ensure(r);
        bit.ensure(r);
        prop_assert_eq!(scalar.num_samples(), bit.num_samples());
        let mut a = vec![0u32; n];
        let mut b = vec![0u32; n];
        for c in 0..n as u32 {
            scalar.counts_from_center(NodeId(c), &mut a);
            bit.counts_from_center(NodeId(c), &mut b);
            prop_assert_eq!(&a, &b, "center {} differs (r = {}, threads = {})", c, r, threads);
        }
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                prop_assert_eq!(
                    scalar.pair_count(NodeId(u), NodeId(v)),
                    bit.pair_count(NodeId(u), NodeId(v)),
                    "pair ({}, {}) differs", u, v
                );
            }
        }
    }

    /// Depth-limited queries: `counts_within_depths` and
    /// `pair_count_within` agree between the scalar world pool and the
    /// bit-parallel pool for random depth pairs.
    #[test]
    fn depth_counts_agree(
        g in small_graph(9, 14),
        seed in any::<u64>(),
        r in sample_sizes(),
        d_select in 0u32..4,
        extra in 0u32..4,
        threads in thread_counts(),
    ) {
        let n = g.num_nodes();
        let d_cover = d_select + extra;
        let mut scalar = WorldPool::new(&g, seed, 1);
        let mut bit = BitParallelPool::<1>::new(&g, seed, threads);
        scalar.ensure(r);
        bit.ensure(r);
        let (mut s1, mut c1) = (vec![0u32; n], vec![0u32; n]);
        let (mut s2, mut c2) = (vec![0u32; n], vec![0u32; n]);
        for c in 0..n as u32 {
            scalar.counts_within_depths(NodeId(c), d_select, d_cover, &mut s1, &mut c1);
            bit.counts_within_depths(NodeId(c), d_select, d_cover, &mut s2, &mut c2);
            prop_assert_eq!(&s1, &s2, "select differs at center {} ({}, {})", c, d_select, d_cover);
            prop_assert_eq!(&c1, &c2, "cover differs at center {} ({}, {})", c, d_select, d_cover);
        }
        for v in 0..n as u32 {
            prop_assert_eq!(
                scalar.pair_count_within(NodeId(0), NodeId(v), d_cover),
                bit.pair_count_within(NodeId(0), NodeId(v), d_cover),
                "pair (0, {}) differs at depth {}", v, d_cover
            );
        }
    }

    /// Growth-schedule invariance across the block boundary: a pool grown
    /// in arbitrary uneven steps equals a pool grown in one shot, and both
    /// equal the scalar reference.
    #[test]
    fn growth_schedule_invariant_across_blocks(
        g in small_graph(8, 12),
        seed in any::<u64>(),
        steps in proptest::collection::vec(1usize..70, 1..5),
    ) {
        let n = g.num_nodes();
        let total: usize = steps.iter().sum();
        let mut stepped = BitParallelPool::<1>::new(&g, seed, 1);
        let mut reached = 0;
        for s in &steps {
            reached += s;
            stepped.ensure(reached);
        }
        let mut oneshot = BitParallelPool::<1>::new(&g, seed, 1);
        oneshot.ensure(total);
        let mut scalar = ComponentPool::new(&g, seed, 1);
        scalar.ensure(total);
        let mut a = vec![0u32; n];
        let mut b = vec![0u32; n];
        let mut c = vec![0u32; n];
        for center in 0..n as u32 {
            stepped.counts_from_center(NodeId(center), &mut a);
            oneshot.counts_from_center(NodeId(center), &mut b);
            scalar.counts_from_center(NodeId(center), &mut c);
            prop_assert_eq!(&a, &b, "stepped vs one-shot differ at center {}", center);
            prop_assert_eq!(&b, &c, "bit-parallel vs scalar differ at center {}", center);
        }
    }

    /// Batched multi-center rows equal the sequential per-center rows on
    /// every backend — the contract `min-partial`'s batched candidate
    /// fetch rests on. Candidate sets include duplicates and span the
    /// multi-source group size on small graphs.
    #[test]
    fn batched_rows_equal_sequential_rows(
        g in small_graph(10, 16),
        seed in any::<u64>(),
        r in sample_sizes(),
        threads in thread_counts(),
        picks in proptest::collection::vec(0u32..10, 1..12),
    ) {
        let n = g.num_nodes();
        let centers: Vec<NodeId> =
            picks.iter().map(|&c| NodeId(c % n as u32)).collect();
        let k = centers.len();
        let mut scalar = ComponentPool::new(&g, seed, threads);
        let mut world = WorldPool::new(&g, seed, threads);
        let mut bit = BitParallelPool::<1>::new(&g, seed, threads);
        scalar.ensure(r);
        world.ensure(r);
        bit.ensure(r);
        // Sequential reference rows from the scalar backend.
        let mut want = vec![0u32; k * n];
        for (j, &c) in centers.iter().enumerate() {
            scalar.counts_from_center(c, &mut want[j * n..(j + 1) * n]);
        }
        let mut got = vec![0u32; k * n];
        scalar.counts_from_centers(&centers, &mut got);
        prop_assert_eq!(&got, &want, "component-pool batch (r = {}, k = {})", r, k);
        got.fill(0);
        bit.counts_from_centers(&centers, &mut got);
        prop_assert_eq!(&got, &want, "bit-parallel batch (r = {}, k = {})", r, k);
        got.fill(0);
        WorldEngine::counts_from_centers(&mut world, &centers, &mut got);
        prop_assert_eq!(&got, &want, "world-pool batch (r = {}, k = {})", r, k);
    }

    /// Batched depth rows equal sequential depth rows on both
    /// depth-capable backends.
    #[test]
    fn batched_depth_rows_equal_sequential_rows(
        g in small_graph(9, 14),
        seed in any::<u64>(),
        r in sample_sizes(),
        d_select in 0u32..4,
        extra in 0u32..4,
        threads in thread_counts(),
    ) {
        let n = g.num_nodes();
        let d_cover = d_select + extra;
        let centers: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        let k = centers.len();
        let mut world = WorldPool::new(&g, seed, 1);
        let mut bit = BitParallelPool::<1>::new(&g, seed, threads);
        world.ensure(r);
        bit.ensure(r);
        let (mut want_s, mut want_c) = (vec![0u32; k * n], vec![0u32; k * n]);
        for (j, &c) in centers.iter().enumerate() {
            world.counts_within_depths(
                c,
                d_select,
                d_cover,
                &mut want_s[j * n..(j + 1) * n],
                &mut want_c[j * n..(j + 1) * n],
            );
        }
        let (mut got_s, mut got_c) = (vec![0u32; k * n], vec![0u32; k * n]);
        world.counts_within_depths_batch(&centers, d_select, d_cover, &mut got_s, &mut got_c);
        prop_assert_eq!(&got_s, &want_s, "world-pool batch select ({}, {})", d_select, d_cover);
        prop_assert_eq!(&got_c, &want_c, "world-pool batch cover ({}, {})", d_select, d_cover);
        got_s.fill(0);
        got_c.fill(0);
        bit.counts_within_depths_batch(&centers, d_select, d_cover, &mut got_s, &mut got_c);
        prop_assert_eq!(&got_s, &want_s, "bit-parallel batch select ({}, {})", d_select, d_cover);
        prop_assert_eq!(&got_c, &want_c, "bit-parallel batch cover ({}, {})", d_select, d_cover);
    }

    /// Ranged **multi-center** rows equal sequential single-center ranged
    /// rows on every backend, for arbitrary windows — the contract the
    /// oracle row cache's grouped top-up waves rest on.
    #[test]
    fn ranged_batched_rows_equal_sequential_ranged_rows(
        g in small_graph(10, 16),
        seed in any::<u64>(),
        r in sample_sizes(),
        threads in thread_counts(),
        picks in proptest::collection::vec(0u32..10, 1..10),
        window in (0usize..200, 0usize..200),
    ) {
        let n = g.num_nodes();
        let (a, b) = window;
        let (lo, hi) = (a.min(b).min(r), b.max(a).min(r));
        let centers: Vec<NodeId> =
            picks.iter().map(|&c| NodeId(c % n as u32)).collect();
        let k = centers.len();
        let mut scalar = ComponentPool::new(&g, seed, threads);
        let mut world = WorldPool::new(&g, seed, threads);
        let mut bit = BitParallelPool::<1>::new(&g, seed, threads);
        scalar.ensure(r);
        world.ensure(r);
        bit.ensure(r);
        let mut want = vec![0u32; k * n];
        for (j, &c) in centers.iter().enumerate() {
            scalar.counts_from_center_range(c, lo, hi, &mut want[j * n..(j + 1) * n]);
        }
        let mut got = vec![0u32; k * n];
        scalar.counts_from_centers_range(&centers, lo, hi, &mut got);
        prop_assert_eq!(&got, &want, "component-pool ranged batch [{}, {})", lo, hi);
        got.fill(0);
        bit.counts_from_centers_range(&centers, lo, hi, &mut got);
        prop_assert_eq!(&got, &want, "bit-parallel ranged batch [{}, {})", lo, hi);
        got.fill(0);
        WorldEngine::counts_from_centers_range(&mut world, &centers, lo, hi, &mut got);
        prop_assert_eq!(&got, &want, "world-pool ranged batch [{}, {})", lo, hi);
    }

    /// The depth-limited ranged batch obeys the same contract on both
    /// depth-capable backends.
    #[test]
    fn ranged_batched_depth_rows_equal_sequential_ranged_rows(
        g in small_graph(9, 14),
        seed in any::<u64>(),
        r in sample_sizes(),
        depths in (0u32..3, 0u32..3),
        threads in thread_counts(),
        window in (0usize..200, 0usize..200),
    ) {
        let n = g.num_nodes();
        let (d_select, extra) = depths;
        let d_cover = d_select + extra;
        let (a, b) = window;
        let (lo, hi) = (a.min(b).min(r), b.max(a).min(r));
        let centers: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        let k = centers.len();
        let mut world = WorldPool::new(&g, seed, 1);
        let mut bit = BitParallelPool::<1>::new(&g, seed, threads);
        world.ensure(r);
        bit.ensure(r);
        let (mut want_s, mut want_c) = (vec![0u32; k * n], vec![0u32; k * n]);
        for (j, &c) in centers.iter().enumerate() {
            world.counts_within_depths_range(
                c,
                d_select,
                d_cover,
                lo,
                hi,
                &mut want_s[j * n..(j + 1) * n],
                &mut want_c[j * n..(j + 1) * n],
            );
        }
        let (mut got_s, mut got_c) = (vec![0u32; k * n], vec![0u32; k * n]);
        world.counts_within_depths_batch_range(
            &centers, d_select, d_cover, lo, hi, &mut got_s, &mut got_c,
        );
        prop_assert_eq!(&got_s, &want_s, "world-pool ranged batch select [{}, {})", lo, hi);
        prop_assert_eq!(&got_c, &want_c, "world-pool ranged batch cover [{}, {})", lo, hi);
        got_s.fill(0);
        got_c.fill(0);
        bit.counts_within_depths_batch_range(
            &centers, d_select, d_cover, lo, hi, &mut got_s, &mut got_c,
        );
        prop_assert_eq!(&got_s, &want_s, "bit-parallel ranged batch select [{}, {})", lo, hi);
        prop_assert_eq!(&got_c, &want_c, "bit-parallel ranged batch cover [{}, {})", lo, hi);
    }

    /// Incremental top-ups equal from-scratch counts: growing the pool in
    /// arbitrary steps and summing ranged counts over the growth windows
    /// reproduces the full-pool counts exactly, on both backends. This is
    /// precisely the oracle row cache's serve path.
    #[test]
    fn incremental_topups_equal_from_scratch(
        g in small_graph(9, 14),
        seed in any::<u64>(),
        steps in proptest::collection::vec(1usize..70, 1..5),
        threads in thread_counts(),
    ) {
        let n = g.num_nodes();
        let total: usize = steps.iter().sum();
        let mut scalar = ComponentPool::new(&g, seed, threads);
        let mut bit = BitParallelPool::<1>::new(&g, seed, threads);
        let mut part = vec![0u32; n];
        let mut acc_scalar = vec![vec![0u32; n]; n];
        let mut acc_bit = vec![vec![0u32; n]; n];
        let mut reached = 0usize;
        for s in &steps {
            let lo = reached;
            reached += s;
            scalar.ensure(reached);
            bit.ensure(reached);
            // Top up every center's accumulated row over the new window,
            // as the row cache does after `prepare` growth.
            for c in 0..n as u32 {
                scalar.counts_from_center_range(NodeId(c), lo, reached, &mut part);
                for (a, &p) in acc_scalar[c as usize].iter_mut().zip(&part) { *a += p; }
                bit.counts_from_center_range(NodeId(c), lo, reached, &mut part);
                for (a, &p) in acc_bit[c as usize].iter_mut().zip(&part) { *a += p; }
            }
        }
        let mut fresh = ComponentPool::new(&g, seed, 1);
        fresh.ensure(total);
        let mut want = vec![0u32; n];
        for c in 0..n as u32 {
            fresh.counts_from_center(NodeId(c), &mut want);
            prop_assert_eq!(&acc_scalar[c as usize], &want, "scalar top-ups at center {}", c);
            prop_assert_eq!(&acc_bit[c as usize], &want, "bit-parallel top-ups at center {}", c);
        }
    }

    /// The depth-limited ranged counts obey the same additivity.
    #[test]
    fn incremental_depth_topups_equal_from_scratch(
        g in small_graph(8, 12),
        seed in any::<u64>(),
        split in 1usize..100,
        d_select in 0u32..3,
        extra in 0u32..3,
    ) {
        let n = g.num_nodes();
        let total = 100usize;
        let split = split.min(total);
        let d_cover = d_select + extra;
        let mut world = WorldPool::new(&g, seed, 1);
        let mut bit = BitParallelPool::<1>::new(&g, seed, 1);
        world.ensure(total);
        bit.ensure(total);
        let (mut ws, mut wc) = (vec![0u32; n], vec![0u32; n]);
        let (mut ps, mut pc) = (vec![0u32; n], vec![0u32; n]);
        for c in 0..n as u32 {
            world.counts_within_depths(NodeId(c), d_select, d_cover, &mut ws, &mut wc);
            for (engine, name) in [
                (&mut world as &mut dyn WorldEngine, "world"),
                (&mut bit as &mut dyn WorldEngine, "bitparallel"),
            ] {
                let (mut acs, mut acc) = (vec![0u32; n], vec![0u32; n]);
                for (lo, hi) in [(0, split), (split, total)] {
                    engine.counts_within_depths_range(
                        NodeId(c), d_select, d_cover, lo, hi, &mut ps, &mut pc,
                    );
                    for i in 0..n {
                        acs[i] += ps[i];
                        acc[i] += pc[i];
                    }
                }
                prop_assert_eq!(&acs, &ws, "{} select split {} center {}", name, split, c);
                prop_assert_eq!(&acc, &wc, "{} cover split {} center {}", name, split, c);
            }
        }
    }

    /// End to end through the oracle layer: a cache-enabled oracle serves
    /// bit-identical probability rows to a cache-disabled one across an
    /// arbitrary prepare/query schedule, on both backends.
    #[test]
    fn cached_oracle_rows_identical_to_uncached(
        g in small_graph(8, 12),
        seed in any::<u64>(),
        qs in proptest::collection::vec(0.05f64..1.0, 1..5),
        bitparallel in any::<bool>(),
    ) {
        let n = g.num_nodes();
        let kind = if bitparallel { EngineKind::BitParallel } else { EngineKind::Scalar };
        let schedule = SampleSchedule::practical();
        let mut cached = McOracle::with_engine(&g, seed, 1, schedule, 0.1, kind);
        let mut plain =
            McOracle::with_engine(&g, seed, 1, schedule, 0.1, kind).with_row_cache(false);
        let (mut s1, mut c1) = (vec![0.0; n], vec![0.0; n]);
        let (mut s2, mut c2) = (vec![0.0; n], vec![0.0; n]);
        for &q in &qs {
            cached.prepare(q).unwrap();
            plain.prepare(q).unwrap();
            for c in 0..n as u32 {
                cached.center_probs(NodeId(c), &mut s1, &mut c1).unwrap();
                plain.center_probs(NodeId(c), &mut s2, &mut c2).unwrap();
                prop_assert_eq!(&c1, &c2, "cover rows differ at center {} q {}", c, q);
                prop_assert_eq!(&s1, &s2, "select rows differ at center {} q {}", c, q);
            }
            // Batched fetch with the identical-rows fast path agrees too.
            let centers: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
            let mut batch = vec![0.0; n * n];
            cached.center_probs_batch(&centers, &mut [], &mut batch).unwrap();
            for c in 0..n {
                plain.center_probs(NodeId(c as u32), &mut s2, &mut c2).unwrap();
                prop_assert_eq!(&batch[c * n..(c + 1) * n], &c2[..], "batch row {} q {}", c, q);
            }
        }
    }

    /// The adaptive backend (bit-parallel + lazy block finalization) is
    /// count-identical to both the scalar labels and the pure-mask pool
    /// across arbitrary growth schedules that finalize blocks mid-request:
    /// after each growth step a row query converts/extends the touched
    /// blocks (non-multiple-of-64 tails included), and every query family
    /// must keep agreeing on the resulting mixed finalized/unfinalized
    /// pool.
    #[test]
    fn adaptive_counts_agree_across_growth_schedules(
        g in small_graph(10, 16),
        seed in any::<u64>(),
        steps in proptest::collection::vec(1usize..70, 1..4),
        threads in thread_counts(),
        picks in proptest::collection::vec(0u32..10, 1..6),
    ) {
        let n = g.num_nodes();
        let centers: Vec<NodeId> = picks.iter().map(|&c| NodeId(c % n as u32)).collect();
        let k = centers.len();
        let mut scalar = ComponentPool::new(&g, seed, 1);
        let mut mask = BitParallelPool::<1>::new(&g, seed, 1);
        let mut adaptive = BitParallelPool::<1>::new_adaptive(&g, seed, threads);
        let mut reached = 0usize;
        let mut a = vec![0u32; n];
        let mut b = vec![0u32; n];
        for s in &steps {
            let lo = reached;
            reached += s;
            scalar.ensure(reached);
            mask.ensure(reached);
            adaptive.ensure(reached);
            // Single rows (finalizes the touched blocks mid-request)...
            for c in 0..n as u32 {
                scalar.counts_from_center(NodeId(c), &mut a);
                adaptive.counts_from_center(NodeId(c), &mut b);
                prop_assert_eq!(&a, &b, "center {} after growing to {}", c, reached);
            }
            // ...ranged rows over just the new window...
            scalar.counts_from_center_range(centers[0], lo, reached, &mut a);
            adaptive.counts_from_center_range(centers[0], lo, reached, &mut b);
            prop_assert_eq!(&a, &b, "ranged window [{}, {})", lo, reached);
            // ...batched rows, and pairs (label path on finalized blocks).
            let mut wa = vec![0u32; k * n];
            let mut wb = vec![0u32; k * n];
            mask.counts_from_centers(&centers, &mut wa);
            adaptive.counts_from_centers(&centers, &mut wb);
            prop_assert_eq!(&wa, &wb, "batch at {} samples", reached);
            for u in 0..n as u32 {
                prop_assert_eq!(
                    scalar.pair_count(NodeId(0), NodeId(u)),
                    adaptive.pair_count(NodeId(0), NodeId(u)),
                    "pair (0, {}) at {} samples", u, reached
                );
            }
        }
        // Every lane was labeled at most once across the whole schedule.
        let stats = adaptive.engine_stats();
        prop_assert!(stats.finalized_lanes <= reached,
            "relabeling detected: {} lanes labeled, {} sampled", stats.finalized_lanes, reached);
    }

    /// The narrow (`u16`) and wide (`u32`) label widths are
    /// count-identical, on the scalar rows and on the adaptive block
    /// labels.
    #[test]
    fn label_widths_agree(
        g in small_graph(10, 16),
        seed in any::<u64>(),
        r in sample_sizes(),
        threads in thread_counts(),
    ) {
        let n = g.num_nodes();
        let mut narrow = ComponentPool::new(&g, seed, threads);
        let mut wide = ComponentPool::new(&g, seed, 1).with_wide_labels(true);
        let mut bn = BitParallelPool::<1>::new_adaptive(&g, seed, 1);
        let mut bw = BitParallelPool::<1>::new_adaptive(&g, seed, threads).with_wide_labels(true);
        narrow.ensure(r);
        wide.ensure(r);
        bn.ensure(r);
        bw.ensure(r);
        let mut a = vec![0u32; n];
        let mut b = vec![0u32; n];
        for c in 0..n as u32 {
            narrow.counts_from_center(NodeId(c), &mut a);
            wide.counts_from_center(NodeId(c), &mut b);
            prop_assert_eq!(&a, &b, "scalar widths differ at center {}", c);
            bn.counts_from_center(NodeId(c), &mut a);
            bw.counts_from_center(NodeId(c), &mut b);
            prop_assert_eq!(&a, &b, "block-label widths differ at center {}", c);
            prop_assert_eq!(
                bn.pair_count(NodeId(0), NodeId(c)),
                bw.pair_count(NodeId(0), NodeId(c)),
                "pair (0, {}) widths differ", c
            );
        }
    }

    /// End to end through the oracle layer: the adaptive engine serves
    /// bit-identical probability rows to the scalar and pure-mask engines
    /// across an arbitrary prepare/query schedule.
    #[test]
    fn adaptive_oracle_rows_identical_to_scalar(
        g in small_graph(8, 12),
        seed in any::<u64>(),
        qs in proptest::collection::vec(0.05f64..1.0, 1..4),
    ) {
        let n = g.num_nodes();
        let schedule = SampleSchedule::practical();
        let mut scalar = McOracle::with_engine(&g, seed, 1, schedule, 0.1, EngineKind::Scalar);
        let mut adaptive =
            McOracle::with_engine(&g, seed, 1, schedule, 0.1, EngineKind::Adaptive);
        let (mut s1, mut c1) = (vec![0.0; n], vec![0.0; n]);
        let (mut s2, mut c2) = (vec![0.0; n], vec![0.0; n]);
        for &q in &qs {
            scalar.prepare(q).unwrap();
            adaptive.prepare(q).unwrap();
            for c in 0..n as u32 {
                scalar.center_probs(NodeId(c), &mut s1, &mut c1).unwrap();
                adaptive.center_probs(NodeId(c), &mut s2, &mut c2).unwrap();
                prop_assert_eq!(&c1, &c2, "cover rows differ at center {} q {}", c, q);
            }
            prop_assert_eq!(
                scalar.pair_prob(NodeId(0), NodeId(n as u32 - 1)),
                adaptive.pair_prob(NodeId(0), NodeId(n as u32 - 1)),
                "pair prob differs at q {}", q
            );
        }
    }

    /// The trait-level estimates (the numbers the clustering algorithms
    /// actually consume) are bit-identical across backends.
    #[test]
    fn trait_estimates_identical(
        g in small_graph(8, 12),
        seed in any::<u64>(),
        r in sample_sizes(),
    ) {
        let mut scalar = ComponentPool::new(&g, seed, 1);
        let mut bit = BitParallelPool::<1>::new(&g, seed, 1);
        let engines: &mut [&mut dyn WorldEngine] = &mut [&mut scalar, &mut bit];
        for e in engines.iter_mut() {
            e.ensure(r);
        }
        let n = g.num_nodes() as u32;
        for u in 0..n {
            for v in 0..n {
                let a = engines[0].pair_estimate(NodeId(u), NodeId(v));
                let b = engines[1].pair_estimate(NodeId(u), NodeId(v));
                // Identical counts divided by identical r: exact equality.
                prop_assert_eq!(a, b, "estimate ({}, {}) differs", u, v);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Tentpole invariant: the bit-parallel pool produces bit-identical
    /// counts at every block width (64, 256, and 512 worlds per block),
    /// across every query family, for sample sizes that leave partial
    /// tails at each width, in both pure-mask and adaptive mode.
    #[test]
    fn block_widths_agree_on_all_query_shapes(
        g in small_graph(10, 16),
        seed in any::<u64>(),
        r in wide_sample_sizes(),
        threads in thread_counts(),
        picks in proptest::collection::vec(any::<u32>(), 1..5),
        shape in ((0u32..3, 0u32..3), (0usize..600, 0usize..600), any::<bool>()),
    ) {
        let n = g.num_nodes() as u32;
        let centers: Vec<NodeId> = picks.iter().map(|&c| NodeId(c % n)).collect();
        let ((d_select, extra), (a, b), adaptive) = shape;
        let d_cover = d_select + extra;
        let (lo, hi) = (a.min(b).min(r), a.max(b).min(r));

        let mut w1 = BitParallelPool::<1>::new(&g, seed, 1).with_finalization(adaptive);
        let mut w4 = BitParallelPool::<4>::new(&g, seed, threads).with_finalization(adaptive);
        let mut w8 = BitParallelPool::<8>::new(&g, seed, threads).with_finalization(adaptive);
        w1.ensure(r);
        w4.ensure(r);
        w8.ensure(r);
        prop_assert_eq!(w1.num_samples(), r);
        prop_assert_eq!(w4.num_samples(), r);
        prop_assert_eq!(w8.num_samples(), r);

        let want = query_fingerprint(&mut w1, &centers, d_select, d_cover, lo, hi);
        let got4 = query_fingerprint(&mut w4, &centers, d_select, d_cover, lo, hi);
        prop_assert_eq!(&want, &got4, "widths 64 vs 256 differ (r = {}, window [{}, {}))", r, lo, hi);
        let got8 = query_fingerprint(&mut w8, &centers, d_select, d_cover, lo, hi);
        prop_assert_eq!(&want, &got8, "widths 64 vs 512 differ (r = {}, window [{}, {}))", r, lo, hi);
    }

    /// Adaptive pools stay count-identical across widths when the pool
    /// grows *between* queries: each step tops up partially-filled blocks
    /// (different tail geometry per width) and re-queries, so lazily
    /// finalized labels from earlier steps must coexist with fresh worlds.
    #[test]
    fn block_widths_agree_across_growth_schedules(
        g in small_graph(9, 14),
        seed in any::<u64>(),
        steps in proptest::collection::vec(1usize..300, 1..4),
        threads in thread_counts(),
    ) {
        let n = g.num_nodes();
        let mut w1 = BitParallelPool::<1>::new_adaptive(&g, seed, 1);
        let mut w4 = BitParallelPool::<4>::new_adaptive(&g, seed, threads);
        let mut w8 = BitParallelPool::<8>::new_adaptive(&g, seed, 1);
        let centers: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        let mut reached = 0usize;
        for &s in &steps {
            let lo = reached;
            reached += s;
            w1.ensure(reached);
            w4.ensure(reached);
            w8.ensure(reached);
            let want = query_fingerprint(&mut w1, &centers, 1, 2, lo, reached);
            let got4 = query_fingerprint(&mut w4, &centers, 1, 2, lo, reached);
            prop_assert_eq!(&want, &got4, "widths 64 vs 256 differ at {} samples", reached);
            let got8 = query_fingerprint(&mut w8, &centers, 1, 2, lo, reached);
            prop_assert_eq!(&want, &got8, "widths 64 vs 512 differ at {} samples", reached);
        }
    }
}

proptest! {
    // Each case spans several shards (> 2 · SHARD_WORLDS worlds), so keep
    // the case count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Shard eviction and regeneration preserve width equivalence: pools
    /// whose budget holds only ~1.5 of their 3 shards must evict under
    /// every query below and regenerate bit-identical worlds on demand,
    /// at every width, matching an unbounded width-64 reference.
    #[test]
    fn block_widths_agree_under_memory_budget(
        g in small_graph(8, 12),
        seed in any::<u64>(),
        tail in 1usize..64,
        threads in thread_counts(),
    ) {
        let n = g.num_nodes() as u32;
        let r = 2 * SHARD_WORLDS + tail;
        let centers: Vec<NodeId> = (0..n).map(NodeId).collect();

        let mut reference = BitParallelPool::<1>::new(&g, seed, 1);
        reference.ensure(r);
        let want = query_fingerprint(&mut reference, &centers, 1, 2, 100, r - 50);

        // A shard's mask bytes are width-independent (SHARD_WORLDS worlds
        // over m edges), so the same budget stresses each width equally.
        let shard_bytes = g.num_edges() * (SHARD_WORLDS / 8);
        let budget = shard_bytes * 3 / 2;

        let mut w1 = BitParallelPool::<1>::new(&g, seed, 1);
        w1.set_memory_budget(MemoryBudget::bounded(budget));
        let mut w4 = BitParallelPool::<4>::new(&g, seed, threads);
        w4.set_memory_budget(MemoryBudget::bounded(budget));
        let mut w8 = BitParallelPool::<8>::new(&g, seed, threads);
        w8.set_memory_budget(MemoryBudget::bounded(budget));
        w1.ensure(r);
        w4.ensure(r);
        w8.ensure(r);

        let got1 = query_fingerprint(&mut w1, &centers, 1, 2, 100, r - 50);
        prop_assert_eq!(&want, &got1, "width 64 differs under budget");
        let got4 = query_fingerprint(&mut w4, &centers, 1, 2, 100, r - 50);
        prop_assert_eq!(&want, &got4, "width 256 differs under budget");
        let got8 = query_fingerprint(&mut w8, &centers, 1, 2, 100, r - 50);
        prop_assert_eq!(&want, &got8, "width 512 differs under budget");

        // The budget is below the 3-shard working set, so every pool must
        // actually have exercised the evict-and-regenerate path.
        prop_assert!(w1.memory_stats().shards_evicted > 0);
        prop_assert!(w4.memory_stats().shards_evicted > 0);
        prop_assert!(w8.memory_stats().shards_evicted > 0);
    }
}
