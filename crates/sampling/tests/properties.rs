//! Property-based tests for the sampling layer, validating the paper's
//! probabilistic claims on exhaustively-solvable instances.

use proptest::prelude::*;
use ugraph_graph::{GraphBuilder, NodeId, UncertainGraph};
use ugraph_sampling::{
    ComponentPool, DepthMcOracle, ExactOracle, McOracle, Oracle, SampleSchedule, WorldPool,
};

/// Strategy: a small random uncertain graph with at most `max_m ≤ 12`
/// uncertain edges, so the exact oracle stays cheap.
fn small_graph(max_n: u32, max_m: usize) -> impl Strategy<Value = UncertainGraph> {
    (3..=max_n).prop_flat_map(move |n| {
        let edge = (0..n, 0..n, 0.05f64..=1.0);
        proptest::collection::vec(edge, 0..max_m).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n as usize);
            for (u, v, p) in edges {
                if u != v {
                    b.add_edge(u, v, p).unwrap();
                }
            }
            b.build().unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// **Theorem 1**: Pr(u ~ z) ≥ Pr(u ~ v) · Pr(v ~ z) for all triplets.
    #[test]
    fn triangle_inequality_exact(g in small_graph(8, 12)) {
        let oracle = ExactOracle::new(&g).unwrap();
        let n = g.num_nodes() as u32;
        for u in 0..n {
            for v in 0..n {
                for z in 0..n {
                    let puz = oracle.pair_probability(NodeId(u), NodeId(z));
                    let puv = oracle.pair_probability(NodeId(u), NodeId(v));
                    let pvz = oracle.pair_probability(NodeId(v), NodeId(z));
                    prop_assert!(
                        puz >= puv * pvz - 1e-12,
                        "triangle violated: Pr({u}~{z})={puz} < {puv}·{pvz}"
                    );
                }
            }
        }
    }

    /// **Eq. 6** (depth-limited triangle inequality):
    /// Pr(u ~d~ z) ≥ Pr(u ~d1~ v) · Pr(v ~d2~ z) whenever d ≥ d1 + d2.
    #[test]
    fn depth_triangle_inequality_exact(g in small_graph(7, 10), d1 in 1u32..3, d2 in 1u32..3) {
        let d = d1 + d2;
        let od = ExactOracle::with_depth(&g, d).unwrap();
        let od1 = ExactOracle::with_depth(&g, d1).unwrap();
        let od2 = ExactOracle::with_depth(&g, d2).unwrap();
        let n = g.num_nodes() as u32;
        for u in 0..n {
            for v in 0..n {
                for z in 0..n {
                    let lhs = od.pair_probability(NodeId(u), NodeId(z));
                    let rhs = od1.pair_probability(NodeId(u), NodeId(v))
                        * od2.pair_probability(NodeId(v), NodeId(z));
                    prop_assert!(lhs >= rhs - 1e-12);
                }
            }
        }
    }

    /// Monotonicity (consequence of Lemma 1): raising an edge probability
    /// never decreases any connection probability.
    #[test]
    fn raising_edge_prob_is_monotone(g in small_graph(7, 10), bump in 0.01f64..0.5) {
        if g.num_edges() == 0 { return Ok(()); }
        let before = ExactOracle::new(&g).unwrap();
        // Bump the probability of edge 0 (capped at 1).
        let mut b = GraphBuilder::new(g.num_nodes());
        for (e, u, v, p) in g.edges() {
            let p2 = if e.index() == 0 { (p + bump).min(1.0) } else { p };
            b.add_edge(u.0, v.0, p2).unwrap();
        }
        let bumped = ExactOracle::new(&b.build().unwrap()).unwrap();
        let n = g.num_nodes() as u32;
        for u in 0..n {
            for v in 0..n {
                prop_assert!(
                    bumped.pair_probability(NodeId(u), NodeId(v))
                        >= before.pair_probability(NodeId(u), NodeId(v)) - 1e-12
                );
            }
        }
    }

    /// Depth monotonicity: Pr(u ~d~ v) is non-decreasing in d and reaches
    /// the unlimited probability at d = n − 1.
    #[test]
    fn depth_probabilities_monotone(g in small_graph(7, 10)) {
        let n = g.num_nodes();
        let unlimited = ExactOracle::new(&g).unwrap();
        let mut prev: Option<ExactOracle> = None;
        for d in 1..n as u32 {
            let cur = ExactOracle::with_depth(&g, d).unwrap();
            for u in 0..n as u32 {
                for v in 0..n as u32 {
                    let c = cur.pair_probability(NodeId(u), NodeId(v));
                    if let Some(p) = &prev {
                        prop_assert!(c >= p.pair_probability(NodeId(u), NodeId(v)) - 1e-12);
                    }
                    prop_assert!(c <= unlimited.pair_probability(NodeId(u), NodeId(v)) + 1e-12);
                }
            }
            prev = Some(cur);
        }
        if let Some(p) = prev {
            for u in 0..n as u32 {
                for v in 0..n as u32 {
                    let a = p.pair_probability(NodeId(u), NodeId(v));
                    let b = unlimited.pair_probability(NodeId(u), NodeId(v));
                    prop_assert!((a - b).abs() < 1e-12, "depth n-1 must equal unlimited");
                }
            }
        }
    }

    /// The Monte-Carlo estimator is consistent: with 4000 samples the
    /// estimate sits within a generous tolerance of the exact value.
    #[test]
    fn estimator_consistency(g in small_graph(6, 8), seed in any::<u64>()) {
        let exact = ExactOracle::new(&g).unwrap();
        let mut pool = ComponentPool::new(&g, seed, 1);
        pool.ensure(4000);
        for u in 0..g.num_nodes() as u32 {
            for v in 0..g.num_nodes() as u32 {
                let est = pool.pair_estimate(NodeId(u), NodeId(v));
                let want = exact.pair_probability(NodeId(u), NodeId(v));
                // 4000 samples -> std err <= 0.0079; 6 sigma ≈ 0.05.
                prop_assert!(
                    (est - want).abs() < 0.05,
                    "Pr({u}~{v}): est {est} vs exact {want} (seed {seed})"
                );
            }
        }
    }

    /// Estimated center rows agree with pairwise estimates (internal
    /// consistency of the bucket-trick counting).
    #[test]
    fn center_counts_equal_pair_counts(g in small_graph(8, 14), seed in any::<u64>()) {
        let mut pool = ComponentPool::new(&g, seed, 1);
        pool.ensure(300);
        let n = g.num_nodes();
        let mut counts = vec![0u32; n];
        for c in 0..n as u32 {
            pool.counts_from_center(NodeId(c), &mut counts);
            for v in 0..n as u32 {
                prop_assert_eq!(
                    counts[v as usize] as usize,
                    pool.pair_count(NodeId(c), NodeId(v))
                );
            }
        }
    }

    /// **Thread-count invariance**: under a fixed master seed, the
    /// Monte-Carlo oracle returns bit-identical estimates whether its pool
    /// is generated and queried with 1 thread, 4 threads, or all cores —
    /// the reproducibility contract of the per-index RNG streams plus
    /// integer count merging.
    #[test]
    fn mc_oracle_estimates_independent_of_thread_count(
        g in small_graph(10, 16),
        seed in any::<u64>(),
    ) {
        let n = g.num_nodes();
        let mut oracles: Vec<McOracle> = [1usize, 4, 0]
            .iter()
            .map(|&threads| {
                let mut o = McOracle::new(&g, seed, threads, SampleSchedule::Fixed(400), 0.1);
                o.prepare(0.5).unwrap();
                o
            })
            .collect();
        prop_assert_eq!(oracles[0].num_samples(), 400);
        let mut reference_select = vec![0.0; n];
        let mut reference_cover = vec![0.0; n];
        let mut select = vec![0.0; n];
        let mut cover = vec![0.0; n];
        for c in 0..n as u32 {
            let (first, rest) = oracles.split_at_mut(1);
            first[0].center_probs(NodeId(c), &mut reference_select, &mut reference_cover).unwrap();
            for o in rest {
                o.center_probs(NodeId(c), &mut select, &mut cover).unwrap();
                // Bit-identical, not approximately equal.
                prop_assert_eq!(&select, &reference_select, "select row differs at center {}", c);
                prop_assert_eq!(&cover, &reference_cover, "cover row differs at center {}", c);
            }
        }
        for v in 1..n as u32 {
            let want = oracles[0].pair_prob(NodeId(0), NodeId(v)).unwrap();
            for o in &mut oracles[1..] {
                prop_assert_eq!(o.pair_prob(NodeId(0), NodeId(v)).unwrap(), want);
            }
        }
    }

    /// Thread-count invariance for the depth-limited oracle.
    #[test]
    fn depth_oracle_estimates_independent_of_thread_count(
        g in small_graph(9, 14),
        seed in any::<u64>(),
        d_select in 1u32..3,
        extra_depth in 0u32..3,
    ) {
        let n = g.num_nodes();
        let d_cover = d_select + extra_depth;
        let mut oracles: Vec<DepthMcOracle> = [1usize, 4, 0]
            .iter()
            .map(|&threads| {
                let mut o = DepthMcOracle::new(
                    &g, seed, threads, SampleSchedule::Fixed(300), 0.1, d_select, d_cover,
                )
                .expect("valid depths");
                o.prepare(0.5).unwrap();
                o
            })
            .collect();
        let mut reference_select = vec![0.0; n];
        let mut reference_cover = vec![0.0; n];
        let mut select = vec![0.0; n];
        let mut cover = vec![0.0; n];
        for c in 0..n as u32 {
            let (first, rest) = oracles.split_at_mut(1);
            first[0].center_probs(NodeId(c), &mut reference_select, &mut reference_cover).unwrap();
            for o in rest {
                o.center_probs(NodeId(c), &mut select, &mut cover).unwrap();
                prop_assert_eq!(&select, &reference_select, "select row differs at center {}", c);
                prop_assert_eq!(&cover, &reference_cover, "cover row differs at center {}", c);
            }
        }
    }

    /// Thread-count invariance at the pool layer: the sampled worlds
    /// themselves (not just aggregates) are identical across thread counts.
    #[test]
    fn pools_identical_across_thread_counts(g in small_graph(10, 16), seed in any::<u64>()) {
        let mut serial = ComponentPool::new(&g, seed, 1);
        let mut parallel = ComponentPool::new(&g, seed, 4);
        serial.ensure(120);
        parallel.ensure(120);
        for i in 0..120 {
            prop_assert_eq!(serial.labels(i), parallel.labels(i), "sample {} differs", i);
        }
        let mut wserial = WorldPool::new(&g, seed, 1);
        let mut wparallel = WorldPool::new(&g, seed, 4);
        wserial.ensure(80);
        wparallel.ensure(80);
        for i in 0..80 {
            prop_assert_eq!(wserial.world(i), wparallel.world(i), "world {} differs", i);
        }
    }

    /// Schedules never return zero samples and respect their caps.
    #[test]
    fn schedules_are_sane(q in 1e-6f64..1.0, n in 2usize..10_000) {
        let practical = SampleSchedule::practical();
        let r = practical.samples_for(q, n);
        prop_assert!((50..=2048).contains(&r));
        let fixed = SampleSchedule::Fixed(7);
        prop_assert_eq!(fixed.samples_for(q, n), 7);
        let theory = SampleSchedule::Theory { epsilon: 0.5, gamma: 0.1, p_l: 1e-4 };
        prop_assert!(theory.samples_for(q, n) > 0);
    }
}
