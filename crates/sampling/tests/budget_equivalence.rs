//! Property-based tests of the memory-budget contract: a pool under any
//! byte budget answers every query **bit-identically** to an unbounded
//! pool with the same seed (eviction only ever discards shards that can be
//! regenerated from their per-index RNG streams), and a bounded pool never
//! reports more held bytes than its limit after a range query returns.

use proptest::prelude::*;
use ugraph_graph::{GraphBuilder, NodeId, UncertainGraph};
use ugraph_sampling::{BitParallelPool, ComponentPool, MemoryBudget, WorldPool, SHARD_WORLDS};

/// Strategy: a small random uncertain graph (3..=8 nodes, ≤ 14 edges).
fn small_graph() -> impl Strategy<Value = UncertainGraph> {
    (3u32..=8).prop_flat_map(|n| {
        let edge = (0..n, 0..n, 0.05f64..=1.0);
        proptest::collection::vec(edge, 0..14).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n as usize);
            for (u, v, p) in edges {
                if u != v {
                    b.add_edge(u, v, p).unwrap();
                }
            }
            b.build().unwrap()
        })
    })
}

/// Center-count rows of every node, concatenated (the solver-path query).
fn component_rows(pool: &mut ComponentPool<'_>, n: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(n * n);
    let mut row = vec![0u32; n];
    for c in 0..n as u32 {
        pool.counts_from_center(NodeId(c), &mut row);
        out.extend_from_slice(&row);
    }
    out
}

fn bitparallel_rows(pool: &mut BitParallelPool<'_>, n: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(n * n);
    let mut row = vec![0u32; n];
    for c in 0..n as u32 {
        pool.counts_from_center(NodeId(c), &mut row);
        out.extend_from_slice(&row);
    }
    out
}

/// Depth-limited select/cover rows of every node (the WorldPool query).
fn world_rows(pool: &mut WorldPool<'_>, n: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(2 * n * n);
    let mut select = vec![0u32; n];
    let mut cover = vec![0u32; n];
    for c in 0..n as u32 {
        pool.counts_within_depths(NodeId(c), 2, 4, &mut select, &mut cover);
        out.extend_from_slice(&select);
        out.extend_from_slice(&cover);
    }
    out
}

proptest! {
    // Each case samples multiple shard groups per backend; keep the case
    // count modest so the suite stays in CI range.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Evict-then-requery is bit-identical on all three backends: a pool
    /// whose budget cannot even hold one shard (every query regenerates
    /// from the per-index RNG streams) answers exactly like an unbounded
    /// pool, on a first pass and again on a re-query after eviction.
    #[test]
    fn evict_then_requery_is_bit_identical(
        g in small_graph(),
        seed in any::<u64>(),
        extra in 1usize..SHARD_WORLDS,
    ) {
        // Span two shard groups so partial eviction is possible.
        let r = SHARD_WORLDS + extra;
        let n = g.num_nodes();
        let tiny = MemoryBudget::bounded(64);

        let mut plain = ComponentPool::new(&g, seed, 1);
        plain.ensure(r);
        let want = component_rows(&mut plain, n);
        let mut tight = ComponentPool::new(&g, seed, 1);
        tight.set_memory_budget(tiny.clone());
        tight.ensure(r);
        prop_assert_eq!(&component_rows(&mut tight, n), &want, "scalar: first pass diverges");
        prop_assert_eq!(&component_rows(&mut tight, n), &want, "scalar: requery diverges");
        let stats = tight.memory_stats();
        prop_assert!(stats.shards_evicted > 0, "scalar: budget 64 B never evicted");
        prop_assert!(stats.shards_regenerated > 0, "scalar: nothing was regenerated");

        let mut plain = BitParallelPool::new(&g, seed, 1);
        plain.ensure(r);
        let want = bitparallel_rows(&mut plain, n);
        let mut tight = BitParallelPool::new(&g, seed, 1);
        tight.set_memory_budget(tiny.clone());
        tight.ensure(r);
        prop_assert_eq!(&bitparallel_rows(&mut tight, n), &want, "bitparallel: first pass");
        prop_assert_eq!(&bitparallel_rows(&mut tight, n), &want, "bitparallel: requery");
        let stats = tight.memory_stats();
        prop_assert!(stats.shards_evicted > 0, "bitparallel: budget 64 B never evicted");
        prop_assert!(stats.shards_regenerated > 0, "bitparallel: nothing was regenerated");

        let mut plain = WorldPool::new(&g, seed, 1);
        plain.ensure(r);
        let want = world_rows(&mut plain, n);
        let mut tight = WorldPool::new(&g, seed, 1);
        tight.set_memory_budget(tiny);
        tight.ensure(r);
        prop_assert_eq!(&world_rows(&mut tight, n), &want, "world: first pass diverges");
        prop_assert_eq!(&world_rows(&mut tight, n), &want, "world: requery diverges");
        let stats = tight.memory_stats();
        prop_assert!(stats.shards_evicted > 0, "world: budget 64 B never evicted");
        prop_assert!(stats.shards_regenerated > 0, "world: nothing was regenerated");
    }

    /// The budget is a hard bound: after `ensure` and a range query
    /// return, `bytes_held` never exceeds the limit, on any backend and
    /// for any limit (including limits below a single shard).
    #[test]
    fn bytes_held_never_exceeds_the_budget(
        g in small_graph(),
        seed in any::<u64>(),
        extra in 1usize..SHARD_WORLDS,
        limit in 64usize..200_000,
    ) {
        let r = SHARD_WORLDS + extra;
        let n = g.num_nodes();

        let mut pool = ComponentPool::new(&g, seed, 1);
        pool.set_memory_budget(MemoryBudget::bounded(limit));
        pool.ensure(r);
        component_rows(&mut pool, n);
        let stats = pool.memory_stats();
        prop_assert!(
            stats.bytes_held <= limit,
            "scalar holds {} bytes over the {} limit", stats.bytes_held, limit
        );
        prop_assert_eq!(stats.bytes_limit, Some(limit));

        let mut pool = BitParallelPool::new(&g, seed, 1);
        pool.set_memory_budget(MemoryBudget::bounded(limit));
        pool.ensure(r);
        bitparallel_rows(&mut pool, n);
        let stats = pool.memory_stats();
        prop_assert!(
            stats.bytes_held <= limit,
            "bitparallel holds {} bytes over the {} limit", stats.bytes_held, limit
        );

        let mut pool = WorldPool::new(&g, seed, 1);
        pool.set_memory_budget(MemoryBudget::bounded(limit));
        pool.ensure(r);
        world_rows(&mut pool, n);
        let stats = pool.memory_stats();
        prop_assert!(
            stats.bytes_held <= limit,
            "world holds {} bytes over the {} limit", stats.bytes_held, limit
        );
    }
}
