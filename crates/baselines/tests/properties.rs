//! Property-based tests for the baseline algorithms.

use proptest::prelude::*;
use ugraph_baselines::{gmm, kpt, mcl, KptConfig, MclConfig};
use ugraph_graph::{GraphBuilder, NodeId, UncertainGraph};

/// Random graph with a connectivity spine (so GMM/k constraints are easy
/// to satisfy).
fn spined_graph(max_n: u32) -> impl Strategy<Value = UncertainGraph> {
    (4..=max_n).prop_flat_map(|n| {
        let extra = proptest::collection::vec((0..n, 0..n, 0.05f64..=1.0), 0..40);
        (Just(n), extra, 0.1f64..=1.0).prop_map(|(n, extra, p_spine)| {
            let mut b = GraphBuilder::new(n as usize);
            for i in 0..n - 1 {
                b.add_edge(i, i + 1, p_spine).unwrap();
            }
            for (u, v, p) in extra {
                if u != v {
                    b.add_edge(u, v, p).unwrap();
                }
            }
            b.build().unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// GMM always returns a valid, full clustering with exactly k clusters,
    /// deterministically under the seed.
    #[test]
    fn gmm_contract(g in spined_graph(24), k in 1usize..6, seed in any::<u64>()) {
        prop_assume!(k < g.num_nodes());
        let c = gmm(&g, k, seed).unwrap();
        prop_assert!(c.validate().is_ok());
        prop_assert!(c.is_full());
        prop_assert_eq!(c.num_clusters(), k);
        let c2 = gmm(&g, k, seed).unwrap();
        prop_assert_eq!(c, c2);
    }

    /// GMM centers are pairwise distinct and each node's cluster is its
    /// nearest center under ln(1/p) distances (up to ties).
    #[test]
    #[allow(clippy::needless_range_loop)] // parallel-array indexing
    fn gmm_assigns_to_nearest_center(g in spined_graph(16), k in 2usize..4, seed in any::<u64>()) {
        prop_assume!(k < g.num_nodes());
        let c = gmm(&g, k, seed).unwrap();
        // Distances from every center.
        let dists: Vec<Vec<f64>> = c
            .centers()
            .iter()
            .map(|&s| ugraph_graph::dijkstra(&g, s))
            .collect();
        for u in 0..g.num_nodes() {
            let assigned = c.cluster_of(NodeId::from_index(u)).unwrap();
            if c.centers().contains(&NodeId::from_index(u)) {
                continue; // centers are pinned to their own cluster
            }
            let du = dists[assigned][u];
            for other in 0..k {
                prop_assert!(
                    du <= dists[other][u] + 1e-9,
                    "node {u} assigned to center {assigned} at {du} but center \
                     {other} is at {}",
                    dists[other][u]
                );
            }
        }
    }

    /// MCL returns a valid full clustering and is deterministic.
    #[test]
    fn mcl_contract(g in spined_graph(20), inflation_x10 in 12u32..=30) {
        let cfg = MclConfig::with_inflation(f64::from(inflation_x10) / 10.0);
        let r1 = mcl(&g, &cfg);
        let r2 = mcl(&g, &cfg);
        prop_assert!(r1.clustering.validate().is_ok());
        prop_assert!(r1.clustering.is_full());
        prop_assert_eq!(&r1.clustering, &r2.clustering);
        prop_assert!(r1.clustering.num_clusters() >= 1);
        prop_assert!(r1.clustering.num_clusters() <= g.num_nodes());
    }

    /// KPT: every non-center node shares a ≥ threshold edge with its
    /// cluster's pivot, and pivots are independent under the majority world
    /// (no pivot is a strong neighbor of an earlier pivot... weaker check:
    /// clusters only contain pivot-adjacent nodes).
    #[test]
    fn kpt_clusters_are_pivot_stars(g in spined_graph(20), seed in any::<u64>()) {
        let cfg = KptConfig { edge_threshold: 0.5, seed };
        let c = kpt(&g, &cfg);
        prop_assert!(c.validate().is_ok());
        prop_assert!(c.is_full());
        for (i, members) in c.clusters().iter().enumerate() {
            let pivot = c.center(i);
            for &m in members {
                if m == pivot {
                    continue;
                }
                let strong_edge = g
                    .neighbors(pivot)
                    .any(|(v, e)| v == m && g.prob(e) >= cfg.edge_threshold);
                prop_assert!(
                    strong_edge,
                    "node {m:?} in cluster of pivot {pivot:?} without a strong edge"
                );
            }
        }
    }

    /// KPT with threshold above every probability yields all singletons;
    /// with threshold 0 (accept everything) pivots absorb their whole
    /// neighborhoods.
    #[test]
    fn kpt_threshold_extremes(g in spined_graph(16), seed in any::<u64>()) {
        let all_single = kpt(&g, &KptConfig { edge_threshold: 1.1, seed });
        prop_assert_eq!(all_single.num_clusters(), g.num_nodes());
        let greedy = kpt(&g, &KptConfig { edge_threshold: 0.0, seed });
        // Each cluster is a star: pivot + neighbors unclaimed at pivot time.
        prop_assert!(greedy.num_clusters() <= g.num_nodes());
    }
}
