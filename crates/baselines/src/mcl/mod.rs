//! The Markov Cluster Algorithm (van Dongen) on uncertain graphs.
//!
//! MCL simulates flow on the weighted graph: alternate **expansion**
//! (squaring the column-stochastic transition matrix — flow spreads along
//! random walks) and **inflation** (entrywise powering + renormalization —
//! strong flows strengthen, weak flows evaporate) until the matrix
//! converges to a (near-)idempotent limit whose attractor structure spells
//! out the clustering. Edge probabilities act as similarity weights, the
//! convention used when MCL is applied to uncertain graphs (paper §5.1).
//!
//! The **inflation** parameter steers granularity: higher inflation makes
//! flow evaporate sooner, yielding more and smaller clusters. There is no
//! analytic mapping from inflation to cluster count — the paper exploits
//! this to motivate algorithms that control `k` directly. The experiment
//! harness reproduces the paper's setup by running MCL at the published
//! inflation values and matching `k` for the other algorithms.

pub mod matrix;

use ugraph_cluster::Clustering;
use ugraph_graph::{NodeId, UncertainGraph};

use matrix::ColMatrix;

/// Weight of the self-loops MCL adds before normalization.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum SelfLoopWeight {
    /// Weight 1. With probability weights (< 1) this makes the loop
    /// dominate every column and biases MCL toward singletons.
    One,
    /// The maximum incident edge weight — van Dongen's implementation
    /// default, and the right choice when edge weights are probabilities:
    /// the loop never outweighs the strongest actual interaction.
    #[default]
    MaxIncident,
}

/// MCL parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct MclConfig {
    /// Inflation exponent `I > 1`; granularity knob (paper uses 1.2 / 1.5 /
    /// 2.0 on the PPI graphs and 1.15 / 1.2 / 1.3 on DBLP).
    pub inflation: f64,
    /// Self-loop weight policy.
    pub self_loop: SelfLoopWeight,
    /// Entries below this fraction of their column are pruned each round.
    pub prune_threshold: f64,
    /// Hard cap on entries per column (resource bound; van Dongen's
    /// implementation uses a comparable scheme).
    pub max_entries_per_column: usize,
    /// Convergence tolerance on the max entry change between rounds.
    pub tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

impl Default for MclConfig {
    fn default() -> Self {
        MclConfig {
            inflation: 2.0,
            self_loop: SelfLoopWeight::default(),
            prune_threshold: 1e-5,
            max_entries_per_column: 64,
            tol: 1e-6,
            max_iters: 128,
        }
    }
}

impl MclConfig {
    /// Config with a given inflation and defaults elsewhere.
    pub fn with_inflation(inflation: f64) -> Self {
        MclConfig { inflation, ..Default::default() }
    }
}

/// MCL output.
#[derive(Clone, Debug)]
pub struct MclResult {
    /// The clustering; cluster centers are the attractor nodes (as in the
    /// paper's evaluation, which treats attractors as centers when
    /// computing `p_min`/`p_avg` for MCL).
    pub clustering: Clustering,
    /// Expansion/inflation rounds performed.
    pub iterations: usize,
    /// Whether the matrix change dropped below `tol` (vs hitting the
    /// iteration cap).
    pub converged: bool,
}

/// Runs MCL on `graph` with edge probabilities as similarity weights.
pub fn mcl(graph: &UncertainGraph, cfg: &MclConfig) -> MclResult {
    assert!(cfg.inflation > 1.0, "inflation must exceed 1");
    let n = graph.num_nodes();
    if n == 0 {
        return MclResult {
            clustering: Clustering::new(vec![], vec![]),
            iterations: 0,
            converged: true,
        };
    }

    // Build the initial column-stochastic matrix: adjacency weights plus
    // self-loops, columns normalized.
    let mut cols: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    for u in graph.nodes() {
        let mut max_w = 0.0f64;
        for (v, e) in graph.neighbors(u) {
            let w = graph.prob(e);
            max_w = max_w.max(w);
            cols[u.index()].push((v.0, w));
        }
        let loop_w = match cfg.self_loop {
            SelfLoopWeight::One => 1.0,
            SelfLoopWeight::MaxIncident => {
                if max_w > 0.0 {
                    max_w
                } else {
                    1.0
                }
            }
        };
        cols[u.index()].push((u.0, loop_w));
    }
    let mut m = ColMatrix::from_columns(n, cols);
    m.normalize_columns();

    let mut iterations = 0usize;
    let mut converged = false;
    while iterations < cfg.max_iters {
        iterations += 1;
        let mut next = m.expand_squared();
        next.inflate_and_prune(cfg.inflation, cfg.prune_threshold, cfg.max_entries_per_column);
        let diff = next.max_abs_diff(&m);
        m = next;
        if diff < cfg.tol {
            converged = true;
            break;
        }
    }

    MclResult { clustering: interpret(&m), iterations, converged }
}

/// Interprets a (near-)converged MCL matrix as a clustering.
///
/// Each node's **attractor** is the row with the largest value in its
/// column (by idempotency, the limit matrix's column supports lie inside
/// attractor systems). Attractor chains are path-compressed to their
/// fixpoints, and each fixpoint becomes a cluster center.
#[allow(clippy::needless_range_loop)] // parallel-array indexing is the clearest form here
fn interpret(m: &ColMatrix) -> Clustering {
    let n = m.n();
    // attractor[u] = argmax_i M[i, u]; the node itself when its column is
    // empty (fully evaporated — treat as singleton).
    let mut attractor: Vec<u32> = (0..n as u32).collect();
    for u in 0..n {
        if let Some(&(row, _)) =
            m.column(u).iter().max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
        {
            attractor[u] = row;
        }
    }
    // Path-compress to fixpoints; bound the walk to n steps to survive
    // 2-cycles in non-converged matrices (pick the smaller node id then).
    let resolve = |mut x: u32, attractor: &[u32]| -> u32 {
        let mut steps = 0usize;
        let start = x;
        loop {
            let next = attractor[x as usize];
            if next == x {
                return x;
            }
            steps += 1;
            if steps > attractor.len() {
                // Cycle: canonicalize to the smallest id on it.
                let mut min = x.min(start);
                let mut y = attractor[x as usize];
                while y != x {
                    min = min.min(y);
                    y = attractor[y as usize];
                }
                return min;
            }
            x = next;
        }
    };

    let mut root: Vec<u32> = vec![0; n];
    for u in 0..n {
        root[u] = resolve(u as u32, &attractor);
    }
    // Dense cluster ids in order of first appearance of each root.
    let mut cluster_of_root: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    let mut centers: Vec<NodeId> = Vec::new();
    let mut assignment: Vec<Option<u32>> = Vec::with_capacity(n);
    for u in 0..n {
        let r = root[u];
        let id = *cluster_of_root.entry(r).or_insert_with(|| {
            centers.push(NodeId(r));
            (centers.len() - 1) as u32
        });
        assignment.push(Some(id));
    }
    // Roots are fixpoints, so each center's own root is itself and the
    // center-in-own-cluster invariant holds.
    Clustering::new(centers, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_graph::GraphBuilder;

    fn two_communities(bridge: f64) -> UncertainGraph {
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(u, v, 0.9).unwrap();
        }
        b.add_edge(2, 3, bridge).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn splits_two_communities() {
        let g = two_communities(0.05);
        let r = mcl(&g, &MclConfig::with_inflation(2.0));
        assert!(r.converged, "MCL did not converge in {} iters", r.iterations);
        let c = &r.clustering;
        assert!(c.is_full());
        assert_eq!(c.num_clusters(), 2);
        let a = c.cluster_of(NodeId(0));
        assert_eq!(c.cluster_of(NodeId(1)), a);
        assert_eq!(c.cluster_of(NodeId(2)), a);
        assert_ne!(c.cluster_of(NodeId(3)), a);
    }

    #[test]
    fn higher_inflation_never_coarsens() {
        // Ring of 12 nodes with moderate probabilities: granularity should
        // not decrease when inflation grows.
        let mut b = GraphBuilder::new(12);
        for i in 0..12u32 {
            b.add_edge(i, (i + 1) % 12, 0.6).unwrap();
        }
        let g = b.build().unwrap();
        let k_low = mcl(&g, &MclConfig::with_inflation(1.3)).clustering.num_clusters();
        let k_high = mcl(&g, &MclConfig::with_inflation(2.5)).clustering.num_clusters();
        assert!(k_high >= k_low, "inflation 2.5 gave {k_high} clusters < {k_low} at 1.3");
    }

    #[test]
    fn isolated_nodes_become_singletons() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.9).unwrap();
        let g = b.build().unwrap();
        let r = mcl(&g, &MclConfig::default());
        let c = &r.clustering;
        assert!(c.is_full());
        assert_eq!(c.num_clusters(), 3); // {0,1}, {2}, {3}
        assert_ne!(c.cluster_of(NodeId(2)), c.cluster_of(NodeId(3)));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build().unwrap();
        let r = mcl(&g, &MclConfig::default());
        assert_eq!(r.clustering.num_clusters(), 0);
        assert!(r.converged);
    }

    #[test]
    fn clique_is_one_cluster() {
        let mut b = GraphBuilder::new(5);
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                b.add_edge(i, j, 0.95).unwrap();
            }
        }
        let g = b.build().unwrap();
        let r = mcl(&g, &MclConfig::with_inflation(1.5));
        assert_eq!(r.clustering.num_clusters(), 1);
    }

    #[test]
    fn deterministic() {
        let g = two_communities(0.1);
        let a = mcl(&g, &MclConfig::default());
        let b = mcl(&g, &MclConfig::default());
        assert_eq!(a.clustering, b.clustering);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn centers_are_attractors_inside_their_cluster() {
        let g = two_communities(0.05);
        let r = mcl(&g, &MclConfig::default());
        assert!(r.clustering.validate().is_ok());
        for (i, &c) in r.clustering.centers().iter().enumerate() {
            assert_eq!(r.clustering.cluster_of(c), Some(i));
        }
    }

    #[test]
    #[should_panic(expected = "inflation")]
    fn inflation_must_exceed_one() {
        let g = two_communities(0.5);
        let _ = mcl(&g, &MclConfig::with_inflation(1.0));
    }
}
