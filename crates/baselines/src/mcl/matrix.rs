//! Column-stochastic sparse matrix for the Markov Cluster algorithm.
//!
//! Columns are stored independently (jagged representation) because MCL
//! reads and rewrites whole columns: expansion computes each result column
//! as a linear combination of input columns, inflation and pruning are
//! column-local. A dense scatter-accumulator with a touched-list keeps the
//! sparse × sparse product allocation-free per column.

/// Sparse column-stochastic square matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct ColMatrix {
    n: usize,
    /// `cols[j]` = sorted `(row, value)` entries of column `j`.
    cols: Vec<Vec<(u32, f64)>>,
}

impl ColMatrix {
    /// Creates an `n × n` zero matrix.
    pub fn zero(n: usize) -> Self {
        ColMatrix { n, cols: vec![Vec::new(); n] }
    }

    /// Builds a matrix from per-column entry lists (rows need not be
    /// sorted; duplicates are summed).
    pub fn from_columns(n: usize, mut cols: Vec<Vec<(u32, f64)>>) -> Self {
        assert_eq!(cols.len(), n);
        for col in &mut cols {
            col.sort_unstable_by_key(|&(r, _)| r);
            col.dedup_by(|a, b| {
                if a.0 == b.0 {
                    b.1 += a.1;
                    true
                } else {
                    false
                }
            });
            for &(r, _) in col.iter() {
                assert!((r as usize) < n, "row index {r} out of bounds");
            }
        }
        ColMatrix { n, cols }
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.cols.iter().map(Vec::len).sum()
    }

    /// The sorted entries of column `j`.
    #[inline]
    pub fn column(&self, j: usize) -> &[(u32, f64)] {
        &self.cols[j]
    }

    /// Entry `(i, j)`, zero if not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.cols[j]
            .binary_search_by_key(&(i as u32), |&(r, _)| r)
            .map(|pos| self.cols[j][pos].1)
            .unwrap_or(0.0)
    }

    /// Rescales every column to sum 1 (columns that sum to 0 are left
    /// untouched).
    pub fn normalize_columns(&mut self) {
        for col in &mut self.cols {
            let sum: f64 = col.iter().map(|&(_, v)| v).sum();
            if sum > 0.0 {
                for (_, v) in col.iter_mut() {
                    *v /= sum;
                }
            }
        }
    }

    /// The MCL **expansion** step: returns `self × self`.
    ///
    /// Column `j` of the square is `Σ_k M[k, j] · col_k`, accumulated in a
    /// dense scatter buffer with a touched-list, so each column costs
    /// `O(Σ_k∈col_j |col_k|)`.
    pub fn expand_squared(&self) -> ColMatrix {
        let n = self.n;
        let mut acc = vec![0.0f64; n];
        let mut touched: Vec<u32> = Vec::new();
        let mut out_cols = Vec::with_capacity(n);
        for j in 0..n {
            for &(k, wkj) in &self.cols[j] {
                for &(i, wik) in &self.cols[k as usize] {
                    if acc[i as usize] == 0.0 {
                        touched.push(i);
                    }
                    acc[i as usize] += wik * wkj;
                }
            }
            touched.sort_unstable();
            let mut col = Vec::with_capacity(touched.len());
            for &i in &touched {
                // An exact float zero can arise from cancellation; keep the
                // entry out in that case.
                if acc[i as usize] != 0.0 {
                    col.push((i, acc[i as usize]));
                    acc[i as usize] = 0.0;
                }
            }
            touched.clear();
            out_cols.push(col);
        }
        ColMatrix { n, cols: out_cols }
    }

    /// The MCL **inflation** step fused with pruning: raises every entry to
    /// `inflation`, drops entries below `prune_threshold` (after
    /// renormalization they would be noise), keeps at most
    /// `max_entries` strongest entries per column, and renormalizes.
    pub fn inflate_and_prune(&mut self, inflation: f64, prune_threshold: f64, max_entries: usize) {
        for col in &mut self.cols {
            for (_, v) in col.iter_mut() {
                *v = v.powf(inflation);
            }
            let sum: f64 = col.iter().map(|&(_, v)| v).sum();
            if sum <= 0.0 {
                continue;
            }
            // Prune relative to the normalized magnitude.
            col.retain(|&(_, v)| v / sum >= prune_threshold);
            if col.len() > max_entries {
                // Keep the strongest `max_entries` entries.
                col.sort_unstable_by(|a, b| b.1.total_cmp(&a.1));
                col.truncate(max_entries);
                col.sort_unstable_by_key(|&(r, _)| r);
            }
            let sum: f64 = col.iter().map(|&(_, v)| v).sum();
            if sum > 0.0 {
                for (_, v) in col.iter_mut() {
                    *v /= sum;
                }
            }
        }
    }

    /// Maximum absolute difference between two matrices (sparse merge per
    /// column). Used as the MCL convergence criterion.
    pub fn max_abs_diff(&self, other: &ColMatrix) -> f64 {
        assert_eq!(self.n, other.n);
        let mut max = 0.0f64;
        for j in 0..self.n {
            let (a, b) = (&self.cols[j], &other.cols[j]);
            let (mut ia, mut ib) = (0usize, 0usize);
            while ia < a.len() || ib < b.len() {
                let ra = a.get(ia).map_or(u32::MAX, |&(r, _)| r);
                let rb = b.get(ib).map_or(u32::MAX, |&(r, _)| r);
                let d = if ra < rb {
                    ia += 1;
                    a[ia - 1].1.abs()
                } else if rb < ra {
                    ib += 1;
                    b[ib - 1].1.abs()
                } else {
                    ia += 1;
                    ib += 1;
                    (a[ia - 1].1 - b[ib - 1].1).abs()
                };
                max = max.max(d);
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ColMatrix {
        // Column-stochastic 3x3:
        // col0: (0, .5), (1, .5); col1: (1, 1.0); col2: (0, .25), (2, .75)
        ColMatrix::from_columns(
            3,
            vec![vec![(0, 0.5), (1, 0.5)], vec![(1, 1.0)], vec![(2, 0.75), (0, 0.25)]],
        )
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let m = ColMatrix::from_columns(2, vec![vec![(1, 0.3), (0, 0.2), (1, 0.5)], vec![]]);
        assert_eq!(m.column(0), &[(0, 0.2), (1, 0.8)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(1, 0), 0.8);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn normalize_makes_columns_stochastic() {
        let mut m = ColMatrix::from_columns(2, vec![vec![(0, 2.0), (1, 6.0)], vec![(1, 5.0)]]);
        m.normalize_columns();
        assert!((m.get(0, 0) - 0.25).abs() < 1e-12);
        assert!((m.get(1, 0) - 0.75).abs() < 1e-12);
        assert!((m.get(1, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // parallel-array indexing is the clearest form here
    fn expansion_matches_dense_multiply() {
        let m = small();
        let sq = m.expand_squared();
        // Dense reference.
        let mut dense = [[0.0f64; 3]; 3];
        for j in 0..3 {
            for i in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += m.get(i, k) * m.get(k, j);
                }
                dense[i][j] = s;
            }
        }
        for j in 0..3 {
            for i in 0..3 {
                assert!(
                    (sq.get(i, j) - dense[i][j]).abs() < 1e-12,
                    "mismatch at ({i},{j}): {} vs {}",
                    sq.get(i, j),
                    dense[i][j]
                );
            }
        }
    }

    #[test]
    fn expansion_preserves_stochasticity() {
        let sq = small().expand_squared();
        for j in 0..3 {
            let sum: f64 = sq.column(j).iter().map(|&(_, v)| v).sum();
            assert!((sum - 1.0).abs() < 1e-12, "column {j} sums to {sum}");
        }
    }

    #[test]
    fn inflation_sharpens_columns() {
        let mut m = ColMatrix::from_columns(2, vec![vec![(0, 0.8), (1, 0.2)], vec![(1, 1.0)]]);
        m.inflate_and_prune(2.0, 0.0, usize::MAX);
        // 0.64 / (0.64 + 0.04) and 0.04 / 0.68.
        assert!((m.get(0, 0) - 0.64 / 0.68).abs() < 1e-12);
        assert!((m.get(1, 0) - 0.04 / 0.68).abs() < 1e-12);
        assert!(m.get(0, 0) > 0.8, "inflation must sharpen the dominant entry");
    }

    #[test]
    fn pruning_drops_weak_entries_and_renormalizes() {
        let mut m = ColMatrix::from_columns(2, vec![vec![(0, 0.95), (1, 0.05)], vec![(1, 1.0)]]);
        m.inflate_and_prune(1.0, 0.1, usize::MAX);
        assert_eq!(m.column(0).len(), 1);
        assert!((m.get(0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_pruning_keeps_strongest() {
        let mut m = ColMatrix::from_columns(
            4,
            vec![
                vec![(0, 0.4), (1, 0.3), (2, 0.2), (3, 0.1)],
                vec![(1, 1.0)],
                vec![(2, 1.0)],
                vec![(3, 1.0)],
            ],
        );
        m.inflate_and_prune(1.0, 0.0, 2);
        assert_eq!(m.column(0).len(), 2);
        assert_eq!(m.column(0)[0].0, 0);
        assert_eq!(m.column(0)[1].0, 1);
        let sum: f64 = m.column(0).iter().map(|&(_, v)| v).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_abs_diff_detects_changes() {
        let a = small();
        let mut b = small();
        assert_eq!(a.max_abs_diff(&b), 0.0);
        b = ColMatrix::from_columns(
            3,
            vec![vec![(0, 0.5), (1, 0.5)], vec![(1, 0.9), (2, 0.1)], vec![(2, 1.0)]],
        );
        // col1 differs by 0.1 at both rows 1 and 2; col2 row0 drops 0.25,
        // row2 grows 0.25.
        assert!((a.max_abs_diff(&b) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_matrix() {
        let z = ColMatrix::zero(3);
        assert_eq!(z.nnz(), 0);
        let sq = z.expand_squared();
        assert_eq!(sq.nnz(), 0);
    }
}
