//! # ugraph-baselines — comparator algorithms from the paper's evaluation
//!
//! The experimental section of *Clustering Uncertain Graphs* (VLDB 2017,
//! §5) compares MCP/ACP against three pre-existing approaches, none of
//! which has a canonical Rust implementation — so all three are built here
//! from their original papers:
//!
//! * [`mcl()`](mcl::mcl) — the **Markov Cluster Algorithm** (van Dongen, SIAM J. Matrix
//!   Anal. 2008): random-walk flow simulation on the weighted graph with
//!   edge probabilities as similarity weights. Cluster granularity is
//!   steered *indirectly* by the inflation parameter; the number of
//!   clusters cannot be fixed a priori — a key limitation the paper
//!   stresses.
//! * [`gmm()`](gmm::gmm) — the naive adaptation of **Gonzalez's k-center** farthest
//!   -first traversal (Theor. Comput. Sci. 1985) to uncertain graphs:
//!   probabilities become additive weights `w(e) = ln(1/p(e))` and
//!   shortest-path distances replace connection probabilities. This
//!   disregards possible-world semantics and serves as the paper's
//!   cautionary baseline.
//! * [`kpt()`](kpt::kpt) — the pivot-based 5-approximation of **Kollios, Potamias,
//!   Terzi** (TKDE 2013) for edit-distance cluster graphs (pKwikCluster on
//!   the most-probable world). Cluster count is an output, not an input.
//!
//! All three return the same [`Clustering`](ugraph_cluster::Clustering)
//! type as the main algorithms, so every metric applies uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as typed errors, not panics; tests,
// benches, and doctests (separate crates / cfg(test) builds) may unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod gmm;
pub mod kpt;
pub mod mcl;

pub use gmm::gmm;
pub use kpt::{kpt, KptConfig};
pub use mcl::{mcl, MclConfig, MclResult, SelfLoopWeight};
