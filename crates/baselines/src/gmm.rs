//! GMM: Gonzalez's farthest-first k-center traversal on `ln(1/p)` weights.
//!
//! The paper (§5.1) uses this as the representative "naive adaptation of a
//! deterministic clustering algorithm": transform each edge probability
//! into the additive weight `w(e) = ln(1/p(e))`, so a path's total weight
//! is `ln(1/Π p(e))` — the negative log-probability that *that single path*
//! materializes — and run the classical 2-approximation for k-center:
//! repeatedly pick as next center the node farthest from the current
//! center set, then assign every node to its nearest center.
//!
//! The measure ignores that connectivity can be provided by *many* paths
//! jointly (possible-world semantics), which is exactly why the paper finds
//! it underperforms; see Figure 1.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ugraph_cluster::{ClusterError, Clustering};
use ugraph_graph::{MultiSourceDijkstra, NodeId, UncertainGraph};

/// Runs GMM with `k` centers. The first center is drawn uniformly from the
/// nodes using `seed` (the classical algorithm's "arbitrary" choice);
/// subsequent centers are the farthest-first traversal, with ties and
/// unreachable nodes (distance ∞) won by the smallest node id.
///
/// Nodes unreachable from every center are assigned to cluster 0 — they
/// have no meaningful nearest center (this only happens on graphs with
/// more than `k` components).
pub fn gmm(graph: &UncertainGraph, k: usize, seed: u64) -> Result<Clustering, ClusterError> {
    let n = graph.num_nodes();
    if k < 1 || k >= n {
        return Err(ClusterError::KOutOfRange { k, n });
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let first = NodeId(rng.gen_range(0..n as u32));

    let mut ms = MultiSourceDijkstra::new(n);
    let mut centers = Vec::with_capacity(k);
    let mut is_center = vec![false; n];
    ms.add_source(graph, first, 0);
    centers.push(first);
    is_center[first.index()] = true;
    while centers.len() < k {
        let (far, dist) = ms.farthest().unwrap_or_else(|| unreachable!("non-empty graph"));
        // When every remaining node is at distance 0 (certain edges
        // everywhere), the farthest node may already be a center; fall back
        // to the first non-center node (k < n guarantees one exists).
        let next = if !is_center[far.index()] && dist > 0.0 {
            far
        } else {
            (0..n)
                .map(NodeId::from_index)
                .find(|u| !is_center[u.index()])
                .unwrap_or_else(|| unreachable!("k < n leaves a non-center node"))
        };
        let idx = centers.len() as u32;
        is_center[next.index()] = true;
        ms.add_source(graph, next, idx);
        centers.push(next);
    }

    let nearest = ms.nearest_source();
    let mut assignment: Vec<u32> = (0..n)
        .map(|u| {
            let s = nearest[u];
            if s == ugraph_graph::shortest_path::NO_SOURCE {
                0
            } else {
                s
            }
        })
        .collect();
    // A center chosen at distance 0 of an earlier center (possible with
    // certain edges) keeps the earlier center as nearest source; pin every
    // center to its own cluster to uphold the clustering invariant.
    for (i, c) in centers.iter().enumerate() {
        assignment[c.index()] = i as u32;
    }
    Ok(Clustering::new(centers, assignment.into_iter().map(Some).collect()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_graph::GraphBuilder;

    fn two_communities(bridge: f64) -> UncertainGraph {
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(u, v, 0.9).unwrap();
        }
        b.add_edge(2, 3, bridge).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn splits_well_separated_communities() {
        let g = two_communities(0.01);
        let c = gmm(&g, 2, 42).unwrap();
        assert!(c.is_full());
        assert_eq!(c.num_clusters(), 2);
        let a = c.cluster_of(NodeId(0));
        assert_eq!(c.cluster_of(NodeId(1)), a);
        assert_eq!(c.cluster_of(NodeId(2)), a);
        let b_ = c.cluster_of(NodeId(3));
        assert_ne!(a, b_);
        assert_eq!(c.cluster_of(NodeId(5)), b_);
    }

    #[test]
    fn k_out_of_range() {
        let g = two_communities(0.5);
        assert!(matches!(gmm(&g, 0, 0), Err(ClusterError::KOutOfRange { .. })));
        assert!(matches!(gmm(&g, 6, 0), Err(ClusterError::KOutOfRange { .. })));
    }

    #[test]
    fn k_equals_n_minus_one() {
        let g = two_communities(0.5);
        let c = gmm(&g, 5, 7).unwrap();
        assert_eq!(c.num_clusters(), 5);
        assert!(c.is_full());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn deterministic_under_seed() {
        let g = two_communities(0.3);
        assert_eq!(gmm(&g, 3, 9).unwrap(), gmm(&g, 3, 9).unwrap());
    }

    #[test]
    fn farthest_first_spreads_across_components() {
        // Three components; k = 3 must place one center in each.
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(2, 3, 0.9).unwrap();
        b.add_edge(4, 5, 0.9).unwrap();
        let g = b.build().unwrap();
        let c = gmm(&g, 3, 1).unwrap();
        let comp = |u: u32| u / 2;
        let mut comps: Vec<u32> = c.centers().iter().map(|c| comp(c.0)).collect();
        comps.sort_unstable();
        assert_eq!(comps, vec![0, 1, 2]);
    }

    #[test]
    fn unreachable_nodes_fall_back_to_cluster_zero() {
        // Two components, k = 1: the second component is unreachable.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(2, 3, 0.9).unwrap();
        let g = b.build().unwrap();
        let c = gmm(&g, 1, 3).unwrap();
        assert!(c.is_full());
        assert_eq!(c.num_clusters(), 1);
    }

    #[test]
    fn prefers_reliable_paths_over_short_ones() {
        // GMM distances favor the two-hop 0.9·0.9 route over a direct 0.05
        // edge; centers at the extremes then cut through the weak edge.
        // Path: 0 -0.9- 1 -0.9- 2, and direct 0 -0.05- 2.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(1, 2, 0.9).unwrap();
        b.add_edge(0, 2, 0.05).unwrap();
        let g = b.build().unwrap();
        let c = gmm(&g, 2, 5).unwrap();
        // Node 1 must cluster with whichever endpoint is a center via the
        // reliable edge rather than hopping the weak direct edge.
        assert!(c.validate().is_ok());
        assert_eq!(c.num_clusters(), 2);
    }
}
