//! KPT: the Kollios-Potamias-Terzi clustering of large probabilistic
//! graphs (TKDE 2013).
//!
//! KPT formulates clustering as finding a deterministic *cluster graph*
//! (disjoint union of cliques) minimizing the expected edit distance to a
//! random possible world. Their 5-approximation, `pKwikCluster`, is the
//! classical pivot algorithm of Ailon-Charikar-Newman run on the
//! *majority-vote world*: an edge counts as "present" when `p(e) ≥ 1/2`
//! (then linking `u, v` saves expected edit cost). The pivot loop:
//!
//! 1. pick a random unclustered node as **pivot**;
//! 2. form a cluster of the pivot and all unclustered majority-neighbors;
//! 3. repeat until all nodes are clustered.
//!
//! The number of clusters is whatever falls out — the paper (§5.2) uses
//! KPT as the comparison point that *cannot* control granularity, in
//! contrast with MCP/ACP. Pivots double as cluster centers.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ugraph_cluster::Clustering;
use ugraph_graph::{NodeId, UncertainGraph};

/// KPT parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KptConfig {
    /// Probability at or above which an edge belongs to the majority-vote
    /// world (the 5-approximation analysis requires 1/2).
    pub edge_threshold: f64,
    /// RNG seed for the pivot order.
    pub seed: u64,
}

impl Default for KptConfig {
    fn default() -> Self {
        KptConfig { edge_threshold: 0.5, seed: 0 }
    }
}

/// Runs `pKwikCluster`. Returns a full clustering whose centers are the
/// pivots; the number of clusters is data-dependent.
pub fn kpt(graph: &UncertainGraph, cfg: &KptConfig) -> Clustering {
    let n = graph.num_nodes();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    // Random pivot order via Fisher-Yates.
    let mut order: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }

    const UNASSIGNED: u32 = u32::MAX;
    let mut assignment = vec![UNASSIGNED; n];
    let mut centers: Vec<NodeId> = Vec::new();
    for &u in &order {
        if assignment[u as usize] != UNASSIGNED {
            continue;
        }
        let cluster = centers.len() as u32;
        centers.push(NodeId(u));
        assignment[u as usize] = cluster;
        for (v, e) in graph.neighbors(NodeId(u)) {
            if assignment[v.index()] == UNASSIGNED && graph.prob(e) >= cfg.edge_threshold {
                assignment[v.index()] = cluster;
            }
        }
    }
    Clustering::new(centers, assignment.into_iter().map(Some).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_graph::GraphBuilder;

    fn two_communities(bridge: f64) -> UncertainGraph {
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(u, v, 0.9).unwrap();
        }
        b.add_edge(2, 3, bridge).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn weak_bridge_is_never_crossed() {
        let g = two_communities(0.05);
        let c = kpt(&g, &KptConfig::default());
        assert!(c.is_full());
        // No cluster may contain nodes from both sides: the bridge edge has
        // p < 0.5 and there is no other cross link.
        for cluster in c.clusters() {
            let left = cluster.iter().any(|u| u.0 < 3);
            let right = cluster.iter().any(|u| u.0 >= 3);
            assert!(!(left && right), "cluster {cluster:?} crosses the weak bridge");
        }
    }

    #[test]
    fn strong_clique_may_merge_in_one_cluster() {
        let mut b = GraphBuilder::new(4);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                b.add_edge(i, j, 0.9).unwrap();
            }
        }
        let g = b.build().unwrap();
        let c = kpt(&g, &KptConfig::default());
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.cluster_sizes(), vec![4]);
    }

    #[test]
    fn all_weak_edges_give_singletons() {
        let g = two_communities(0.05);
        let cfg = KptConfig { edge_threshold: 0.95, seed: 1 };
        let c = kpt(&g, &cfg);
        assert_eq!(c.num_clusters(), 6, "threshold above all probs ⇒ all singletons");
    }

    #[test]
    fn deterministic_under_seed_and_sensitive_to_it() {
        let g = two_communities(0.4);
        let a = kpt(&g, &KptConfig { edge_threshold: 0.5, seed: 3 });
        let b = kpt(&g, &KptConfig { edge_threshold: 0.5, seed: 3 });
        assert_eq!(a, b);
        // Different seeds may (and on this graph, do for some pair) change
        // the pivot order; just verify both are valid clusterings.
        let c = kpt(&g, &KptConfig { edge_threshold: 0.5, seed: 4 });
        assert!(c.validate().is_ok());
    }

    #[test]
    fn centers_are_pivots_in_own_cluster() {
        let g = two_communities(0.3);
        let c = kpt(&g, &KptConfig::default());
        assert!(c.validate().is_ok());
        for (i, &p) in c.centers().iter().enumerate() {
            assert_eq!(c.cluster_of(p), Some(i));
        }
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build().unwrap();
        let c = kpt(&g, &KptConfig::default());
        assert_eq!(c.num_clusters(), 0);
    }

    #[test]
    fn pivot_neighbors_join_only_if_unassigned() {
        // Path with strong edges: 0-1-2. If 1 is pivoted first, it absorbs
        // both 0 and 2 into one cluster; if 0 first, {0,1} then {2}.
        // Either way every node is assigned exactly once.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.8).unwrap();
        b.add_edge(1, 2, 0.8).unwrap();
        let g = b.build().unwrap();
        for seed in 0..10u64 {
            let c = kpt(&g, &KptConfig { edge_threshold: 0.5, seed });
            assert!(c.is_full());
            assert!(c.num_clusters() <= 2);
        }
    }
}
