//! Published reference values transcribed from the paper's tables and
//! figures, so every harness run prints *paper vs measured* side by side.
//!
//! Sources: Table 1 (dataset sizes), Figure 1 (`p_min`, `p_avg`), Figure 2
//! (inner/outer AVPR), Figure 3 (running times), Figure 4 (DBLP time vs
//! k), Table 2 (TPR/FPR on Krogan vs MIPS).

/// Algorithms in the paper's comparison, in figure order.
pub const ALGOS: [&str; 4] = ["gmm", "mcl", "mcp", "acp"];

/// Per-dataset reference block for Figures 1-3.
#[derive(Clone, Copy, Debug)]
pub struct FigureRef {
    /// Dataset display name used in the paper.
    pub dataset: &'static str,
    /// The three k values (from MCL granularities) used in the figures.
    pub ks: [usize; 3],
    /// MCL inflation values producing those k.
    pub inflations: [f64; 3],
    /// Figure 1 top: `p_min` per algorithm (gmm, mcl, mcp, acp) × k.
    pub p_min: [[f64; 3]; 4],
    /// Figure 1 bottom: `p_avg`.
    pub p_avg: [[f64; 3]; 4],
    /// Figure 2 top: inner-AVPR.
    pub inner_avpr: [[f64; 3]; 4],
    /// Figure 2 bottom: outer-AVPR.
    pub outer_avpr: [[f64; 3]; 4],
    /// Figure 3: running times in milliseconds.
    pub time_ms: [[f64; 3]; 4],
}

/// Collins reference values.
pub const COLLINS: FigureRef = FigureRef {
    dataset: "Collins",
    ks: [24, 69, 99],
    inflations: [1.2, 1.5, 2.0],
    p_min: [
        [0.177, 0.256, 0.320],
        [0.153, 0.232, 0.455],
        [0.356, 0.413, 0.552],
        [0.299, 0.338, 0.447],
    ],
    p_avg: [
        [0.765, 0.859, 0.865],
        [0.929, 0.945, 0.951],
        [0.895, 0.902, 0.951],
        [0.904, 0.944, 0.967],
    ],
    inner_avpr: [
        [0.862, 0.926, 0.955],
        [0.894, 0.923, 0.932],
        [0.809, 0.851, 0.907],
        [0.827, 0.896, 0.935],
    ],
    outer_avpr: [
        [0.720, 0.734, 0.739],
        [0.761, 0.770, 0.772],
        [0.306, 0.393, 0.449],
        [0.378, 0.465, 0.514],
    ],
    time_ms: [[11.3, 34.7, 49.9], [551.0, 240.0, 147.0], [122.1, 227.7, 81.8], [229.0, 75.9, 97.1]],
};

/// Gavin reference values.
pub const GAVIN: FigureRef = FigureRef {
    dataset: "Gavin",
    ks: [50, 172, 274],
    inflations: [1.2, 1.5, 2.0],
    p_min: [
        [0.002, 0.011, 0.024],
        [0.002, 0.015, 0.057],
        [0.048, 0.095, 0.163],
        [0.028, 0.062, 0.093],
    ],
    p_avg: [
        [0.274, 0.391, 0.530],
        [0.603, 0.748, 0.784],
        [0.598, 0.669, 0.731],
        [0.667, 0.727, 0.790],
    ],
    inner_avpr: [
        [0.538, 0.689, 0.780],
        [0.557, 0.744, 0.808],
        [0.439, 0.491, 0.592],
        [0.450, 0.538, 0.607],
    ],
    outer_avpr: [
        [0.400, 0.408, 0.408],
        [0.403, 0.406, 0.407],
        [0.034, 0.060, 0.106],
        [0.055, 0.109, 0.128],
    ],
    time_ms: [
        [30.0, 102.0, 159.0],
        [1113.0, 361.0, 210.0],
        [231.0, 330.0, 277.0],
        [216.0, 282.0, 285.0],
    ],
};

/// Krogan reference values.
pub const KROGAN: FigureRef = FigureRef {
    dataset: "Krogan",
    ks: [77, 289, 517],
    inflations: [1.2, 1.5, 2.0],
    p_min: [
        [0.073, 0.115, 0.151],
        [0.030, 0.065, 0.162],
        [0.141, 0.220, 0.347],
        [0.129, 0.175, 0.285],
    ],
    p_avg: [
        [0.624, 0.648, 0.787],
        [0.749, 0.811, 0.827],
        [0.754, 0.778, 0.880],
        [0.774, 0.835, 0.898],
    ],
    inner_avpr: [
        [0.641, 0.723, 0.797],
        [0.619, 0.710, 0.722],
        [0.608, 0.667, 0.770],
        [0.610, 0.680, 0.774],
    ],
    outer_avpr: [
        [0.316, 0.459, 0.471],
        [0.576, 0.578, 0.579],
        [0.104, 0.178, 0.255],
        [0.112, 0.200, 0.268],
    ],
    time_ms: [
        [60.0, 219.0, 391.0],
        [3197.0, 624.0, 318.0],
        [128.0, 330.0, 554.0],
        [143.0, 391.0, 631.0],
    ],
};

/// DBLP reference values (full scale; times in ms — the paper's Figure 3
/// axis is ×10⁷ ms).
pub const DBLP: FigureRef = FigureRef {
    dataset: "DBLP",
    ks: [1818, 5274, 15576],
    inflations: [1.15, 1.2, 1.3],
    p_min: [
        [0.003, 0.003, 0.007],
        [0.0009, 0.0009, 0.0009], // "<1e-3" in the figure
        [0.063, 0.067, 0.124],
        [0.030, 0.071, 0.118],
    ],
    p_avg: [
        [0.319, 0.266, 0.636],
        [0.724, 0.750, 0.773],
        [0.714, 0.711, 0.663],
        [0.758, 0.730, 0.747],
    ],
    inner_avpr: [
        [0.599, 0.614, 0.643],
        [0.587, 0.620, 0.661],
        [0.583, 0.581, 0.605],
        [0.576, 0.593, 0.598],
    ],
    outer_avpr: [
        [0.496, 0.574, 0.538],
        [0.574, 0.574, 0.574],
        [0.083, 0.061, 0.137],
        [0.027, 0.124, 0.115],
    ],
    time_ms: [
        [1.07e6, 2.98e6, 9.41e6],
        [1.893e7, 1.046e7, 3.52e6],
        [3.39e6, 5.26e6, 1.438e7],
        [2.68e6, 5.41e6, 1.384e7],
    ],
};

/// Table 2 reference: depth-limited MCP/ACP vs MCL and KPT on Krogan
/// against the MIPS ground truth.
#[derive(Clone, Copy, Debug)]
pub struct Table2Ref {
    /// Depths evaluated.
    pub depths: [u32; 5],
    /// TPR for (mcp, acp) per depth.
    pub tpr: [(f64, f64); 5],
    /// FPR for (mcp, acp) per depth.
    pub fpr: [(f64, f64); 5],
    /// MCL's published (TPR, FPR).
    pub mcl: (f64, f64),
    /// KPT's published (TPR, FPR).
    pub kpt: (f64, f64),
    /// k used (the published Krogan clustering's cardinality).
    pub k: usize,
}

/// Table 2 values.
pub const TABLE2: Table2Ref = Table2Ref {
    depths: [2, 3, 4, 6, 8],
    tpr: [(0.344, 0.384), (0.416, 0.459), (0.429, 0.585), (0.695, 0.697), (0.737, 0.730)],
    fpr: [(0.003, 0.006), (0.012, 0.078), (0.147, 0.419), (0.604, 0.633), (0.678, 0.647)],
    mcl: (0.423, 0.002),
    kpt: (0.187, 6.3e-4),
    k: 547,
};

/// Table 1 sizes: (name, nodes, edges) of each dataset's LCC.
pub const TABLE1: [(&str, usize, usize); 4] = [
    ("Collins", 1004, 8323),
    ("Gavin", 1727, 7534),
    ("Krogan", 2559, 7031),
    ("DBLP", 636_751, 2_366_461),
];

/// Figure 4: the k grid of the DBLP time-vs-k study; MCL ran out of memory
/// below k = 1818 on the authors' 18 GB machine.
pub const FIG4_KS: [usize; 6] = [256, 512, 1024, 1818, 5274, 15576];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_tables_are_well_formed() {
        for r in [COLLINS, GAVIN, KROGAN, DBLP] {
            assert!(r.ks[0] < r.ks[1] && r.ks[1] < r.ks[2]);
            for block in [r.p_min, r.p_avg, r.inner_avpr, r.outer_avpr] {
                for row in block {
                    for v in row {
                        assert!((0.0..=1.0).contains(&v), "{}: {v}", r.dataset);
                    }
                }
            }
            for row in r.time_ms {
                for v in row {
                    assert!(v > 0.0);
                }
            }
        }
    }

    #[test]
    fn paper_shape_claims_hold_in_reference_data() {
        // The claims the reproduction must match, checked against the
        // transcription itself: (a) mcp wins p_min everywhere; (b) mcp/acp
        // outer-AVPR below gmm/mcl everywhere.
        for r in [COLLINS, GAVIN, KROGAN, DBLP] {
            for col in 0..3 {
                let (gmm, mcl, mcp, acp) =
                    (r.p_min[0][col], r.p_min[1][col], r.p_min[2][col], r.p_min[3][col]);
                assert!(mcp >= gmm && mcp >= mcl, "{} k#{col}", r.dataset);
                assert!(acp >= gmm.min(mcl), "{} k#{col}", r.dataset);
                let (gmm_o, mcl_o, mcp_o, acp_o) = (
                    r.outer_avpr[0][col],
                    r.outer_avpr[1][col],
                    r.outer_avpr[2][col],
                    r.outer_avpr[3][col],
                );
                assert!(mcp_o < gmm_o && mcp_o < mcl_o);
                assert!(acp_o < gmm_o && acp_o < mcl_o);
            }
        }
    }

    #[test]
    fn table2_tpr_grows_with_depth() {
        for w in TABLE2.tpr.windows(2) {
            assert!(w[1].0 >= w[0].0 - 1e-9);
        }
        for w in TABLE2.fpr.windows(2) {
            assert!(w[1].0 >= w[0].0 - 1e-9);
        }
    }
}
