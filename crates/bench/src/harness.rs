//! Shared machinery of the experiment harness: algorithm runners with
//! timing, evaluation against fresh sample pools, and the experiment
//! configurations.

use std::time::{Duration, Instant};

use ugraph_baselines::{gmm, kpt, mcl, KptConfig, MclConfig};
use ugraph_cluster::{acp, acp_depth, mcp, mcp_depth, ClusterConfig, Clustering};
use ugraph_datasets::DatasetSpec;
use ugraph_graph::UncertainGraph;
use ugraph_metrics::{avpr, clustering_quality, Avpr, Quality};
use ugraph_sampling::ComponentPool;

/// Global harness options (parsed from the CLI).
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Seed for dataset generation and algorithms.
    pub seed: u64,
    /// DBLP scale factor (1.0 = full published size).
    pub dblp_scale: f64,
    /// Samples used by the *evaluation* pools (independent of algorithms).
    pub eval_samples: usize,
    /// Quick mode: smaller k grid / fewer samples for smoke runs.
    pub quick: bool,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig { seed: 1, dblp_scale: 0.05, eval_samples: 512, quick: false }
    }
}

/// The four compared algorithms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// Gonzalez k-center on `ln(1/p)` weights.
    Gmm,
    /// Markov Cluster algorithm (k is implied by the inflation).
    Mcl {
        /// Inflation stored ×100 so the enum stays `Eq` (1.2 → 120).
        inflation_x100: u32,
    },
    /// The paper's MCP.
    Mcp,
    /// The paper's ACP.
    Acp,
}

impl Algo {
    /// Display name.
    pub fn name(&self) -> String {
        match self {
            Algo::Gmm => "gmm".into(),
            Algo::Mcl { .. } => "mcl".into(),
            Algo::Mcp => "mcp".into(),
            Algo::Acp => "acp".into(),
        }
    }
}

/// Outcome of one timed clustering run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The clustering produced.
    pub clustering: Clustering,
    /// Wall-clock time of the algorithm alone.
    pub elapsed: Duration,
}

/// Runs `algo` on `graph` with target `k` (ignored by MCL) and returns the
/// clustering with its wall-clock time. Returns `None` when the algorithm
/// reports no feasible clustering (e.g. MCP on > k components).
pub fn run_algo(graph: &UncertainGraph, algo: Algo, k: usize, seed: u64) -> Option<RunOutcome> {
    let cfg = ClusterConfig::default().with_seed(seed);
    let t = Instant::now();
    let clustering = match algo {
        Algo::Gmm => gmm(graph, k, seed).ok()?,
        Algo::Mcl { inflation_x100 } => {
            mcl(graph, &MclConfig::with_inflation(f64::from(inflation_x100) / 100.0)).clustering
        }
        Algo::Mcp => mcp(graph, k, &cfg).ok()?.clustering,
        Algo::Acp => acp(graph, k, &cfg).ok()?.clustering,
    };
    Some(RunOutcome { clustering, elapsed: t.elapsed() })
}

/// Depth-limited run (Table 2). `None` when no full clustering exists at
/// this depth.
pub fn run_depth_algo(
    graph: &UncertainGraph,
    algo: Algo,
    k: usize,
    depth: u32,
    seed: u64,
) -> Option<RunOutcome> {
    let cfg = ClusterConfig::default().with_seed(seed);
    let t = Instant::now();
    let clustering = match algo {
        Algo::Mcp => mcp_depth(graph, k, depth, &cfg).ok()?.clustering,
        Algo::Acp => acp_depth(graph, k, depth, &cfg).ok()?.clustering,
        _ => return None,
    };
    Some(RunOutcome { clustering, elapsed: t.elapsed() })
}

/// Runs KPT (Table 2 comparator).
pub fn run_kpt(graph: &UncertainGraph, seed: u64) -> RunOutcome {
    let t = Instant::now();
    let clustering = kpt(graph, &KptConfig { edge_threshold: 0.5, seed });
    RunOutcome { clustering, elapsed: t.elapsed() }
}

/// Fresh-pool evaluation of a clustering: `p_min`/`p_avg` + AVPR.
pub fn evaluate(
    graph: &UncertainGraph,
    clustering: &Clustering,
    eval_samples: usize,
    seed: u64,
) -> (Quality, Avpr) {
    let mut pool = ComponentPool::new(graph, seed ^ 0xEAA1_5EED, 0);
    pool.ensure(eval_samples);
    (clustering_quality(&mut pool, clustering), avpr(&mut pool, clustering))
}

/// Builds a reusable evaluation pool (when several clusterings are graded
/// on the same graph).
pub fn eval_pool<'g>(
    graph: &'g UncertainGraph,
    eval_samples: usize,
    seed: u64,
) -> ComponentPool<'g> {
    let mut pool = ComponentPool::new(graph, seed ^ 0xEAA1_5EED, 0);
    pool.ensure(eval_samples);
    pool
}

/// The PPI dataset specs in paper order.
pub fn ppi_specs() -> Vec<(DatasetSpec, crate::paper::FigureRef)> {
    vec![
        (DatasetSpec::Collins, crate::paper::COLLINS),
        (DatasetSpec::Gavin, crate::paper::GAVIN),
        (DatasetSpec::Krogan, crate::paper::KROGAN),
    ]
}

/// Finds an MCL inflation whose cluster count lands closest to `target_k`
/// by bisection (cluster count grows with inflation), returning the chosen
/// inflation (×100) and its timed run.
///
/// The paper's protocol derives the k grid from MCL runs at published
/// inflation values; on synthetic stand-in graphs those inflations yield
/// different granularities, so the harness instead matches MCL's
/// granularity to the *published* k — keeping all columns comparable with
/// the paper's figures.
pub fn mcl_at_granularity(graph: &UncertainGraph, target_k: usize, seed: u64) -> (u32, RunOutcome) {
    let run = |inflation_x100: u32| {
        run_algo(graph, Algo::Mcl { inflation_x100 }, 0, seed).expect("mcl always returns")
    };
    let mut lo = 105u32; // inflation 1.05
    let mut hi = 400u32; // inflation 4.0
    let mut best = (lo, run(lo));
    let consider = |cand: (u32, RunOutcome), best: &mut (u32, RunOutcome)| {
        if cand.1.clustering.num_clusters().abs_diff(target_k)
            < best.1.clustering.num_clusters().abs_diff(target_k)
        {
            *best = cand;
        }
    };
    let first_hi = run(hi);
    consider((hi, first_hi), &mut best);
    for _ in 0..8 {
        if hi - lo <= 2 {
            break;
        }
        let mid = (lo + hi) / 2;
        let out = run(mid);
        let k = out.clustering.num_clusters();
        consider((mid, out), &mut best);
        if k < target_k {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    best
}

/// Estimated peak memory of an MCL run on `graph` in bytes: the dense-ish
/// expansion working set (`nnz(M²) ≈ n · max_entries` entries of 12 bytes,
/// upper-bounded by column caps). Used by the Figure 4 reproduction to
/// report *would-OOM* points without actually exhausting the machine.
pub fn mcl_memory_estimate(graph: &UncertainGraph, max_entries_per_column: usize) -> u64 {
    let n = graph.num_nodes() as u64;
    let avg_deg = if graph.num_nodes() == 0 {
        0.0
    } else {
        2.0 * graph.num_edges() as f64 / graph.num_nodes() as f64
    };
    // Before pruning, a squared column touches ~deg² rows (capped by n);
    // entry = (u32, f64) + Vec overhead ≈ 12-16 bytes.
    let per_col = (avg_deg * avg_deg).min(n as f64).max(max_entries_per_column as f64);
    (n as f64 * per_col * 16.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_graph::GraphBuilder;

    fn toy() -> UncertainGraph {
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(u, v, 0.9).unwrap();
        }
        b.add_edge(2, 3, 0.05).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn run_algo_all_variants() {
        let g = toy();
        for algo in [Algo::Gmm, Algo::Mcl { inflation_x100: 200 }, Algo::Mcp, Algo::Acp] {
            let out = run_algo(&g, algo, 2, 1).expect("runs");
            assert!(out.clustering.validate().is_ok(), "{}", algo.name());
            assert!(out.elapsed.as_nanos() > 0);
        }
    }

    #[test]
    fn run_algo_propagates_infeasibility() {
        // 3 components, k = 2: mcp must return None, mcl ignores k.
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(2, 3, 0.9).unwrap();
        b.add_edge(4, 5, 0.9).unwrap();
        let g = b.build().unwrap();
        assert!(run_algo(&g, Algo::Mcp, 2, 1).is_none());
        assert!(run_algo(&g, Algo::Mcl { inflation_x100: 150 }, 2, 1).is_some());
    }

    #[test]
    fn depth_runs_and_kpt() {
        let g = toy();
        let out = run_depth_algo(&g, Algo::Mcp, 2, 2, 1).expect("depth mcp");
        assert!(out.clustering.is_full());
        assert!(run_depth_algo(&g, Algo::Gmm, 2, 2, 1).is_none(), "gmm has no depth variant");
        let kpt_out = run_kpt(&g, 1);
        assert!(kpt_out.clustering.validate().is_ok());
    }

    #[test]
    fn evaluation_is_deterministic() {
        let g = toy();
        let out = run_algo(&g, Algo::Mcp, 2, 1).unwrap();
        let (q1, a1) = evaluate(&g, &out.clustering, 200, 9);
        let (q2, a2) = evaluate(&g, &out.clustering, 200, 9);
        assert_eq!(q1, q2);
        assert_eq!(a1, a2);
        assert!(q1.p_min > 0.5);
        assert!(a1.inner > a1.outer);
    }

    #[test]
    fn granularity_matching_hits_small_targets() {
        // Ring of moderately reliable edges: inflation sweeps from one
        // cluster to many; the bisection must land near the target.
        let mut b = GraphBuilder::new(24);
        for i in 0..24u32 {
            b.add_edge(i, (i + 1) % 24, 0.6).unwrap();
        }
        let g = b.build().unwrap();
        for target in [2usize, 6, 12] {
            let (inflation_x100, out) = mcl_at_granularity(&g, target, 1);
            let k = out.clustering.num_clusters();
            assert!(
                k.abs_diff(target) <= target,
                "target {target}: got k = {k} at inflation {inflation_x100}"
            );
            assert!((105..=400).contains(&inflation_x100));
        }
    }

    #[test]
    fn memory_estimate_grows_with_graph() {
        let small = toy();
        let est_small = mcl_memory_estimate(&small, 64);
        let mut b = GraphBuilder::new(1000);
        for i in 0..999u32 {
            b.add_edge(i, i + 1, 0.5).unwrap();
        }
        let big = b.build().unwrap();
        assert!(mcl_memory_estimate(&big, 64) > est_small);
    }
}
