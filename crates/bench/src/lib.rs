//! # ugraph-bench — experiment harness for the VLDB'17 reproduction
//!
//! Regenerates every table and figure of the paper's evaluation (§5):
//!
//! | experiment | paper artifact | entry point |
//! |---|---|---|
//! | `tab1` | Table 1 — dataset sizes | `experiments tab1` |
//! | `fig1` | Figure 1 — `p_min` / `p_avg` grids | `experiments fig1` |
//! | `fig2` | Figure 2 — inner/outer AVPR grids | `experiments fig2` |
//! | `fig3` | Figure 3 — running times | `experiments fig3` |
//! | `fig4` | Figure 4 — DBLP time vs k (MCL OOM region) | `experiments fig4` |
//! | `tab2` | Table 2 — complex-prediction TPR/FPR | `experiments tab2` |
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p ugraph-bench --bin experiments -- all
//! ```
//!
//! Criterion micro/ablation benches live in `benches/`. Both layers print
//! *paper vs measured* values; [`paper`] holds the transcribed reference
//! numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod paper;

pub use harness::{
    eval_pool, evaluate, mcl_memory_estimate, ppi_specs, run_algo, run_depth_algo, run_kpt, Algo,
    HarnessConfig, RunOutcome,
};
