//! Diagnostic for the Table 2 depth sweep: cluster-size distribution and
//! threshold trajectory of depth-limited MCP on Krogan-like.

use ugraph_cluster::{mcp_depth, ClusterConfig};
use ugraph_datasets::DatasetSpec;

fn main() {
    let d = DatasetSpec::Krogan.generate(1);
    let graph = &d.graph;
    let k = 547;
    for depth in [4u32, 6, 8] {
        let cfg = ClusterConfig::default().with_seed(1);
        match mcp_depth(graph, k, depth, &cfg) {
            Ok(r) => {
                let mut sizes = r.clustering.cluster_sizes();
                sizes.sort_unstable_by(|a, b| b.cmp(a));
                let singletons = sizes.iter().filter(|&&s| s == 1).count();
                println!(
                    "d={depth}: final_q={:.4} guesses={} samples={} pmin_est={:.3}",
                    r.final_q, r.guesses, r.samples_used, r.min_prob_estimate
                );
                println!(
                    "  top-10 cluster sizes: {:?}  singletons: {singletons}/{}",
                    &sizes[..10.min(sizes.len())],
                    sizes.len()
                );
            }
            Err(e) => println!("d={depth}: {e}"),
        }
    }
}
