//! Experiment harness regenerating every table and figure of the paper's
//! evaluation section (§5).
//!
//! ```text
//! cargo run --release -p ugraph-bench --bin experiments -- <exp> [flags]
//!
//! <exp>: tab1 | fig1 | fig2 | fig3 | fig4 | tab2 | all
//! flags: --seed N           dataset/algorithm seed        (default 1)
//!        --dblp-scale X     DBLP-like scale factor        (default 0.02)
//!        --eval-samples N   evaluation pool size          (default 512)
//!        --quick            reduced grid for smoke runs
//! ```
//!
//! Every section prints *paper vs measured*. Absolute running times are
//! not comparable across machines (and our datasets are synthetic
//! stand-ins — see DESIGN.md §3.5); the reproduction target is the shape:
//! who wins, by roughly what factor, where the crossovers sit.

use std::time::Duration;

use ugraph_bench::harness::{
    eval_pool, mcl_memory_estimate, run_algo, run_depth_algo, run_kpt, Algo, HarnessConfig,
};
use ugraph_bench::paper;
use ugraph_datasets::DatasetSpec;
use ugraph_graph::GraphStats;
use ugraph_metrics::report::{fmt_ms, fmt_prob, Table};
use ugraph_metrics::{avpr, clustering_quality, confusion};

fn main() {
    let (exp, cfg) = parse_args();
    match exp.as_str() {
        "tab1" => tab1(&cfg),
        "fig1" | "fig2" | "fig3" => figures(&cfg, &exp),
        "fig4" => fig4(&cfg),
        "tab2" => tab2(&cfg),
        "all" => {
            tab1(&cfg);
            figures(&cfg, "all");
            fig4(&cfg);
            tab2(&cfg);
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            usage();
            std::process::exit(2);
        }
    }
}

fn usage() {
    eprintln!(
        "usage: experiments <tab1|fig1|fig2|fig3|fig4|tab2|all> \
         [--seed N] [--dblp-scale X] [--eval-samples N] [--quick]"
    );
}

fn parse_args() -> (String, HarnessConfig) {
    let mut cfg = HarnessConfig { dblp_scale: 0.02, ..HarnessConfig::default() };
    let mut exp = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => cfg.seed = expect_num(&mut args, "--seed"),
            "--dblp-scale" => cfg.dblp_scale = expect_float(&mut args, "--dblp-scale"),
            "--eval-samples" => cfg.eval_samples = expect_num(&mut args, "--eval-samples") as usize,
            "--quick" => cfg.quick = true,
            "--help" | "-h" => {
                usage();
                std::process::exit(0);
            }
            other if exp.is_none() && !other.starts_with('-') => exp = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument '{other}'");
                usage();
                std::process::exit(2);
            }
        }
    }
    (exp.unwrap_or_else(|| "all".to_string()), cfg)
}

fn expect_num(args: &mut impl Iterator<Item = String>, flag: &str) -> u64 {
    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} expects a number");
        std::process::exit(2);
    })
}

fn expect_float(args: &mut impl Iterator<Item = String>, flag: &str) -> f64 {
    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} expects a number");
        std::process::exit(2);
    })
}

fn banner(title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

// ───────────────────────── Table 1 ─────────────────────────

fn tab1(cfg: &HarnessConfig) {
    banner("TABLE 1 — dataset sizes (largest connected component)");
    println!("(synthetic -like datasets; DBLP generated at scale {})\n", cfg.dblp_scale);
    let mut t =
        Table::new(vec!["dataset", "paper n", "paper m", "generated n", "generated m", "mean p"]);
    let specs = [
        DatasetSpec::Collins,
        DatasetSpec::Gavin,
        DatasetSpec::Krogan,
        DatasetSpec::Dblp { scale: cfg.dblp_scale },
    ];
    for (spec, (pname, pn, pm)) in specs.into_iter().zip(paper::TABLE1) {
        let d = spec.generate(cfg.seed);
        let s = GraphStats::compute(&d.graph);
        let (pn_s, pm_s) = if matches!(spec, DatasetSpec::Dblp { .. }) {
            (
                format!("{pn} (x{} = {:.0})", cfg.dblp_scale, pn as f64 * cfg.dblp_scale),
                format!("{pm} (scaled ≈ {:.0})", pm as f64 * cfg.dblp_scale),
            )
        } else {
            (pn.to_string(), pm.to_string())
        };
        t.row(vec![
            pname.to_string(),
            pn_s,
            pm_s,
            s.num_nodes.to_string(),
            s.num_edges.to_string(),
            format!("{:.3}", s.mean_prob),
        ]);
    }
    println!("{}", t.to_text());
}

// ──────────────────── Figures 1, 2, 3 (shared grid) ────────────────────

struct GridCell {
    algo: &'static str,
    k: usize,
    p_min: f64,
    p_avg: f64,
    inner: f64,
    outer: f64,
    time: Duration,
    paper_col: usize,
}

fn figures(cfg: &HarnessConfig, which: &str) {
    banner(&format!(
        "FIGURES 1-3 grid — 4 algorithms × 3 granularities per dataset (seed {})",
        cfg.seed
    ));
    let mut specs: Vec<(DatasetSpec, paper::FigureRef)> = ugraph_bench::ppi_specs();
    specs.push((DatasetSpec::Dblp { scale: cfg.dblp_scale }, paper::DBLP));

    for (spec, reference) in specs {
        let d = spec.generate(cfg.seed);
        let graph = &d.graph;
        println!("\n--- {} ({} nodes, {} edges) ---", d.name, graph.num_nodes(), graph.num_edges());
        // The k grid: MCL granularities matched to the paper's published k
        // values (the published inflations produce different granularities
        // on synthetic stand-ins; matching k keeps columns comparable).
        let columns: Vec<(usize, usize)> = {
            let take = if cfg.quick { 1 } else { 3 };
            // For scaled DBLP-like graphs the paper's k values shrink
            // proportionally.
            let scale = if matches!(spec, DatasetSpec::Dblp { .. }) { cfg.dblp_scale } else { 1.0 };
            reference
                .ks
                .iter()
                .enumerate()
                .take(take)
                .map(|(col, &k)| {
                    let k = ((k as f64 * scale).round() as usize)
                        .clamp(2, graph.num_nodes().saturating_sub(1));
                    (col, k)
                })
                .collect()
        };

        let mut cells: Vec<GridCell> = Vec::new();
        let mut pool = eval_pool(graph, cfg.eval_samples, cfg.seed);
        for (col, target_k) in columns {
            let (inflation_x100, mcl_out) =
                ugraph_bench::harness::mcl_at_granularity(graph, target_k, cfg.seed);
            let k = mcl_out.clustering.num_clusters();
            println!(
                "mcl inflation {:.2}: k = {k} (paper k = {}, target {target_k})",
                f64::from(inflation_x100) / 100.0,
                reference.ks[col]
            );
            let q = clustering_quality(&mut pool, &mcl_out.clustering);
            let a = avpr(&mut pool, &mcl_out.clustering);
            cells.push(GridCell {
                algo: "mcl",
                k,
                p_min: q.p_min,
                p_avg: q.p_avg,
                inner: a.inner,
                outer: a.outer,
                time: mcl_out.elapsed,
                paper_col: col,
            });
            // The other three algorithms at MCL's granularity.
            for (algo, name) in [(Algo::Gmm, "gmm"), (Algo::Mcp, "mcp"), (Algo::Acp, "acp")] {
                let k_eff = k.min(graph.num_nodes().saturating_sub(1)).max(1);
                match run_algo(graph, algo, k_eff, cfg.seed) {
                    Some(out) => {
                        let q = clustering_quality(&mut pool, &out.clustering);
                        let a = avpr(&mut pool, &out.clustering);
                        cells.push(GridCell {
                            algo: name,
                            k: k_eff,
                            p_min: q.p_min,
                            p_avg: q.p_avg,
                            inner: a.inner,
                            outer: a.outer,
                            time: out.elapsed,
                            paper_col: col,
                        });
                    }
                    None => println!("{name} found no full clustering at k = {k_eff}"),
                }
            }
        }

        let algo_row =
            |name: &str| -> usize { paper::ALGOS.iter().position(|&a| a == name).unwrap() };
        if which == "fig1" || which == "all" {
            let mut t =
                Table::new(vec!["algo", "k", "p_min", "paper p_min", "p_avg", "paper p_avg"]);
            for c in &cells {
                let row = algo_row(c.algo);
                t.row(vec![
                    c.algo.to_string(),
                    c.k.to_string(),
                    fmt_prob(c.p_min),
                    fmt_prob(reference.p_min[row][c.paper_col]),
                    fmt_prob(c.p_avg),
                    fmt_prob(reference.p_avg[row][c.paper_col]),
                ]);
            }
            println!("\nFIGURE 1 ({}):\n{}", d.name, t.to_text());
        }
        if which == "fig2" || which == "all" {
            let mut t =
                Table::new(vec!["algo", "k", "inner", "paper inner", "outer", "paper outer"]);
            for c in &cells {
                let row = algo_row(c.algo);
                t.row(vec![
                    c.algo.to_string(),
                    c.k.to_string(),
                    fmt_prob(c.inner),
                    fmt_prob(reference.inner_avpr[row][c.paper_col]),
                    fmt_prob(c.outer),
                    fmt_prob(reference.outer_avpr[row][c.paper_col]),
                ]);
            }
            println!("\nFIGURE 2 ({}):\n{}", d.name, t.to_text());
        }
        if which == "fig3" || which == "all" {
            let mut t = Table::new(vec!["algo", "k", "time (ms)", "paper time (ms)"]);
            for c in &cells {
                let row = algo_row(c.algo);
                t.row(vec![
                    c.algo.to_string(),
                    c.k.to_string(),
                    fmt_ms(c.time.as_secs_f64() * 1e3),
                    fmt_ms(reference.time_ms[row][c.paper_col]),
                ]);
            }
            println!("\nFIGURE 3 ({}):\n{}", d.name, t.to_text());
            println!(
                "note: paper times are the authors' 4-core i7 on the real datasets; \
                 DBLP-like here is scaled by {} — compare shapes, not absolutes.",
                cfg.dblp_scale
            );
        }
    }
}

// ───────────────────────── Figure 4 ─────────────────────────

fn fig4(cfg: &HarnessConfig) {
    banner(&format!(
        "FIGURE 4 — running time vs k on DBLP-like (scale {}, seed {})",
        cfg.dblp_scale, cfg.seed
    ));
    let d = DatasetSpec::Dblp { scale: cfg.dblp_scale }.generate(cfg.seed);
    let graph = &d.graph;
    println!("{}: {} nodes, {} edges\n", d.name, graph.num_nodes(), graph.num_edges());

    // k grid: the paper's grid scaled down, deduplicated and clamped.
    let mut ks: Vec<usize> = paper::FIG4_KS
        .iter()
        .map(|&k| ((k as f64 * cfg.dblp_scale).round() as usize).clamp(2, graph.num_nodes() - 1))
        .collect();
    ks.dedup();
    if cfg.quick {
        ks.truncate(2);
    }

    let mut t = Table::new(vec!["k", "mcp time (ms)", "note"]);
    for &k in &ks {
        match run_algo(graph, Algo::Mcp, k, cfg.seed) {
            Some(out) => {
                t.row(vec![k.to_string(), fmt_ms(out.elapsed.as_secs_f64() * 1e3), String::new()]);
            }
            None => {
                t.row(vec![k.to_string(), "-".into(), "no full clustering".into()]);
            }
        }
    }
    println!("mcp:\n{}", t.to_text());

    let mut t = Table::new(vec!["inflation", "k", "mcl time (ms)", "est. peak mem"]);
    let inflations: &[f64] = if cfg.quick { &[1.3] } else { &[1.15, 1.2, 1.3] };
    for &inflation in inflations {
        let est = mcl_memory_estimate(graph, 64);
        let out = run_algo(
            graph,
            Algo::Mcl { inflation_x100: (inflation * 100.0).round() as u32 },
            0,
            cfg.seed,
        )
        .expect("mcl");
        t.row(vec![
            inflation.to_string(),
            out.clustering.num_clusters().to_string(),
            fmt_ms(out.elapsed.as_secs_f64() * 1e3),
            format!("{:.1} MB", est as f64 / 1e6),
        ]);
    }
    println!("mcl:\n{}", t.to_text());
    println!(
        "paper shape: mcl's cost *grows* as k shrinks (lower inflation ⇒ denser flow \
         matrix) and OOMs below k = 1818 on 18 GB; mcp's cost grows mildly with k and \
         needs no quadratic memory. Small-k mcl here would scale to \
         ≈ {:.0} GB at full DBLP size.",
        mcl_memory_estimate(graph, 64) as f64 / 1e9 / cfg.dblp_scale
    );
}

// ───────────────────────── Table 2 ─────────────────────────

fn tab2(cfg: &HarnessConfig) {
    banner(&format!("TABLE 2 — protein-complex prediction on Krogan-like (seed {})", cfg.seed));
    let d = DatasetSpec::Krogan.generate(cfg.seed);
    let graph = &d.graph;
    let complexes = d.ground_truth.as_ref().expect("Krogan-like has planted complexes");
    let pairs: usize = complexes.iter().map(|c| c.len() * (c.len() - 1) / 2).sum();
    println!(
        "{}: {} nodes, {} edges; ground truth: {} planted complexes, {} positive pairs",
        d.name,
        graph.num_nodes(),
        graph.num_edges(),
        complexes.len(),
        pairs
    );
    println!("(paper: MIPS ground truth with 3874 pairs; k = {})\n", paper::TABLE2.k);

    let k = paper::TABLE2.k.min(graph.num_nodes() - 1);
    let depths: Vec<u32> = if cfg.quick { vec![2, 4] } else { paper::TABLE2.depths.to_vec() };

    let mut t = Table::new(vec!["method", "TPR", "paper TPR", "FPR", "paper FPR"]);
    for (i, &depth) in depths.iter().enumerate() {
        let paper_idx = paper::TABLE2.depths.iter().position(|&d| d == depth).unwrap_or(i);
        for (algo, name) in [(Algo::Mcp, "mcp"), (Algo::Acp, "acp")] {
            let label = format!("{name} d={depth}");
            match run_depth_algo(graph, algo, k, depth, cfg.seed) {
                Some(out) => {
                    let m = confusion(&out.clustering, complexes);
                    let (ptpr, pfpr) = match name {
                        "mcp" => (paper::TABLE2.tpr[paper_idx].0, paper::TABLE2.fpr[paper_idx].0),
                        _ => (paper::TABLE2.tpr[paper_idx].1, paper::TABLE2.fpr[paper_idx].1),
                    };
                    t.row(vec![
                        label,
                        fmt_prob(m.tpr()),
                        fmt_prob(ptpr),
                        fmt_prob(m.fpr()),
                        fmt_prob(pfpr),
                    ]);
                }
                None => {
                    t.row(vec![label, "-".into(), String::new(), "-".into(), String::new()]);
                }
            }
        }
    }
    // The paper compares against the Krogan authors' published MCL
    // clustering (547 clusters, parameters tuned for biological
    // significance); emulate that by scanning inflations and keeping the
    // granularity closest to 547 clusters.
    let mcl_out = [130u32, 150, 170, 200]
        .into_iter()
        .map(|inflation_x100| {
            run_algo(graph, Algo::Mcl { inflation_x100 }, 0, cfg.seed).expect("mcl")
        })
        .min_by_key(|out| out.clustering.num_clusters().abs_diff(paper::TABLE2.k))
        .expect("at least one mcl run");
    let m = confusion(&mcl_out.clustering, complexes);
    t.row(vec![
        format!("mcl (k={})", mcl_out.clustering.num_clusters()),
        fmt_prob(m.tpr()),
        fmt_prob(paper::TABLE2.mcl.0),
        fmt_prob(m.fpr()),
        fmt_prob(paper::TABLE2.mcl.1),
    ]);
    let kpt_out = run_kpt(graph, cfg.seed);
    let m = confusion(&kpt_out.clustering, complexes);
    t.row(vec![
        format!("kpt (k={})", kpt_out.clustering.num_clusters()),
        fmt_prob(m.tpr()),
        fmt_prob(paper::TABLE2.kpt.0),
        fmt_prob(m.fpr()),
        fmt_prob(paper::TABLE2.kpt.1),
    ]);
    println!("{}", t.to_text());
    println!(
        "paper shape: TPR and FPR both grow with d; mcp stays more conservative on \
         FPR than acp; both reach mcl-level TPR at moderate depths and beat kpt."
    );
}
