//! Micro-benchmarks of the MCL baseline: one expansion (sparse square) and
//! one inflation+pruning step, plus a full small run — explaining the
//! Figure 3/4 cost profile of mcl.

use criterion::{criterion_group, criterion_main, Criterion};
use ugraph_baselines::mcl::matrix::ColMatrix;
use ugraph_baselines::{mcl, MclConfig};
use ugraph_datasets::DatasetSpec;

fn build_matrix(graph: &ugraph_graph::UncertainGraph) -> ColMatrix {
    let n = graph.num_nodes();
    let mut cols: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    for u in graph.nodes() {
        let mut max_w = 0.0f64;
        for (v, e) in graph.neighbors(u) {
            let w = graph.prob(e);
            max_w = max_w.max(w);
            cols[u.index()].push((v.0, w));
        }
        cols[u.index()].push((u.0, if max_w > 0.0 { max_w } else { 1.0 }));
    }
    let mut m = ColMatrix::from_columns(n, cols);
    m.normalize_columns();
    m
}

fn mcl_steps(c: &mut Criterion) {
    let d = DatasetSpec::Krogan.generate(1);
    let graph = d.graph;
    let m = build_matrix(&graph);

    let mut group = c.benchmark_group("micro_mcl");
    group.sample_size(20);

    group.bench_function("expansion_step", |b| b.iter(|| m.expand_squared().nnz()));

    group.bench_function("inflation_prune_step", |b| {
        let squared = m.expand_squared();
        b.iter(|| {
            let mut work = squared.clone();
            work.inflate_and_prune(2.0, 1e-5, 64);
            work.nnz()
        })
    });

    group.bench_function("full_run_collins_i2", |b| {
        let collins = DatasetSpec::Collins.generate(1);
        b.iter(|| mcl(&collins.graph, &MclConfig::with_inflation(2.0)).clustering.num_clusters())
    });
    group.finish();
}

criterion_group!(benches, mcl_steps);
criterion_main!(benches);
