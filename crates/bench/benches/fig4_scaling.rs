//! Figure 4 (DBLP time vs k) as a Criterion benchmark: MCP across the
//! scaled k grid, against one MCL run — demonstrating the paper's
//! crossover (MCL cost explodes as k shrinks; MCP cost grows mildly
//! with k).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ugraph_bench::{run_algo, Algo};
use ugraph_datasets::DatasetSpec;

const SCALE: f64 = 0.01;

fn fig4(c: &mut Criterion) {
    let d = DatasetSpec::Dblp { scale: SCALE }.generate(1);
    let graph = d.graph;
    let n = graph.num_nodes();

    let mut group = c.benchmark_group("fig4_scaling");
    group.sample_size(10);

    // Paper k grid scaled to this graph size.
    for paper_k in [1818usize, 5274, 15576] {
        let k = ((paper_k as f64 * SCALE).round() as usize).clamp(2, n - 1);
        group.bench_with_input(BenchmarkId::new("mcp", format!("k{k}")), &graph, |b, g| {
            b.iter(|| run_algo(g, Algo::Mcp, k, 1).map(|o| o.clustering.num_clusters()))
        });
    }
    // MCL at the paper's DBLP inflations (k is an output, decreasing with
    // inflation; lower inflation = denser flow = slower, as in the paper).
    for inflation_x100 in [120u32, 130] {
        group.bench_with_input(
            BenchmarkId::new("mcl", format!("I{}", inflation_x100 as f64 / 100.0)),
            &graph,
            |b, g| {
                b.iter(|| {
                    run_algo(g, Algo::Mcl { inflation_x100 }, 0, 1)
                        .map(|o| o.clustering.num_clusters())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig4);
criterion_main!(benches);
