//! Figure 4's scaling axis under memory budgets: MCP on growing
//! `LargeSparse` Erdős–Rényi instances (geometric skip sampling makes the
//! inputs cheap to build at any size), each size solved through one
//! [`UgraphSession`] with an unbounded ledger and again under shrinking
//! byte budgets that force shard eviction and regeneration.
//!
//! Before any timing, an **equality gate** asserts that every budgeted
//! run reproduces the unbounded clustering, assignment probabilities,
//! guess trace, and sample count bit for bit, and that the budgeted
//! session never held more bytes than its limit — a memory bound that
//! changed answers would be meaningless.
//!
//! Besides the criterion group, the bench emits machine-readable results
//! (wall ns, bytes held, shards evicted/regenerated per cell) to
//! `BENCH_scaling.json` in the repository root, so the budget/time
//! trade-off accumulates across PRs. Set `BENCH_SMOKE=1` for a fast CI
//! smoke run (equality gates on, small sizes).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ugraph_cluster::{ClusterConfig, ClusterRequest, SolveResult, UgraphSession};
use ugraph_datasets::DatasetSpec;

fn smoke() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| v != "0")
}

const SEED: u64 = 31;

/// One (graph size, budget) cell of the sweep.
struct Cell {
    nodes: usize,
    edges: usize,
    /// Byte limit; `None` is the unbounded baseline.
    budget: Option<usize>,
    wall_ns: u128,
    bytes_held: usize,
    shards_evicted: u64,
    shards_regenerated: u64,
}

/// Solves the k grid through one session under `budget`, returning the
/// results and the filled-in cell.
fn run_cell(
    graph: &ugraph_graph::UncertainGraph,
    ks: &[usize],
    budget: Option<usize>,
) -> (Vec<SolveResult>, Cell) {
    let mut cfg = ClusterConfig::default().with_seed(SEED).with_threads(1);
    if let Some(bytes) = budget {
        cfg = cfg.with_memory_budget(bytes);
    }
    let t = Instant::now();
    let mut session = UgraphSession::new(graph, cfg).expect("session");
    let results: Vec<SolveResult> =
        ks.iter().map(|&k| session.solve(ClusterRequest::mcp(k)).expect("mcp")).collect();
    let wall_ns = t.elapsed().as_nanos();
    let stats = session.stats();
    let cell = Cell {
        nodes: graph.num_nodes(),
        edges: graph.num_edges(),
        budget,
        wall_ns,
        bytes_held: stats.bytes_held,
        shards_evicted: stats.shards_evicted,
        shards_regenerated: stats.shards_regenerated,
    };
    (results, cell)
}

/// Sweeps one graph size: unbounded baseline, then budgets at 1/2 and 1/8
/// of the baseline's held bytes, equality-gated against the baseline.
fn sweep_size(graph: &ugraph_graph::UncertainGraph, ks: &[usize]) -> Vec<Cell> {
    let (baseline, base_cell) = run_cell(graph, ks, None);
    assert_eq!(base_cell.shards_evicted, 0, "unbounded session must never evict");
    let full_bytes = base_cell.bytes_held;
    assert!(full_bytes > 0, "baseline session held no bytes");

    let mut cells = vec![base_cell];
    for divisor in [2usize, 8] {
        let limit = (full_bytes / divisor).max(1);
        let (got, cell) = run_cell(graph, ks, Some(limit));
        // Equality gate: a memory bound must not change any answer.
        for (b, g) in got.iter().zip(&baseline) {
            assert_eq!(g.clustering, b.clustering, "budget {limit} diverges (n = {})", cell.nodes);
            assert_eq!(g.assign_probs, b.assign_probs, "budget {limit}: probs diverge");
            assert_eq!((g.guesses, g.samples_used), (b.guesses, b.samples_used));
        }
        assert!(
            cell.bytes_held <= limit,
            "budget {limit} overshot: {} bytes held (n = {})",
            cell.bytes_held,
            cell.nodes
        );
        // Below the baseline's footprint something must have been evicted
        // and brought back.
        if limit < full_bytes {
            assert!(cell.shards_evicted > 0, "budget {limit} < {full_bytes} but nothing evicted");
            assert!(cell.shards_regenerated > 0, "evicted shards were never regenerated");
        }
        cells.push(cell);
    }
    cells
}

fn write_scaling_json(cells: &[Cell], ks: &[usize], smoke: bool) {
    let mut rows = String::new();
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        let budget = c.budget.map_or("null".to_string(), |b| b.to_string());
        rows.push_str(&format!(
            "    {{\"nodes\": {}, \"edges\": {}, \"budget_bytes\": {}, \"wall_ns\": {}, \
             \"bytes_held\": {}, \"shards_evicted\": {}, \"shards_regenerated\": {}}}",
            c.nodes,
            c.edges,
            budget,
            c.wall_ns,
            c.bytes_held,
            c.shards_evicted,
            c.shards_regenerated
        ));
    }
    let k_list: Vec<String> = ks.iter().map(|k| k.to_string()).collect();
    let json = format!(
        "{{\n  \"benchmark\": \"fig4_scaling\",\n  \"dataset\": \"LargeSparse\",\n  \
         \"smoke\": {},\n  \"k_grid\": [{}],\n  \"cells\": [\n{}\n  ]\n}}\n",
        smoke,
        k_list.join(", "),
        rows
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scaling.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}

fn fig4(c: &mut Criterion) {
    let smoke = smoke();
    // Full-tier sizes keep the budgeted cells minutes-scale: regeneration
    // overhead grows with shard bytes, so 10⁵-node instances (which the
    // generator handles fine — see `er_skip_sampling_scales_to_sparse_
    // instances`) would push a single 1/8-budget cell past practical
    // bench time.
    let sizes: &[usize] = if smoke { &[1_000, 3_000] } else { &[10_000, 30_000] };
    let ks: &[usize] = if smoke { &[2, 4] } else { &[2, 4, 8] };

    let mut cells = Vec::new();
    for &nodes in sizes {
        let d = DatasetSpec::LargeSparse { nodes }.generate(SEED);
        println!(
            "LargeSparse({nodes}): LCC {} nodes / {} edges",
            d.graph.num_nodes(),
            d.graph.num_edges()
        );
        cells.extend(sweep_size(&d.graph, ks));
    }
    write_scaling_json(&cells, ks, smoke);

    // Criterion timings on the smallest size: the unbounded session vs the
    // tightest (1/8) budget — the regeneration overhead the bound costs.
    let d = DatasetSpec::LargeSparse { nodes: sizes[0] }.generate(SEED);
    let full_bytes = cells
        .iter()
        .find(|c| c.budget.is_none())
        .map(|c| c.bytes_held)
        .expect("baseline cell present");
    let mut group = c.benchmark_group("fig4_scaling");
    group.sample_size(10);
    for budget in [None, Some((full_bytes / 8).max(1))] {
        let label = budget.map_or("unbounded".to_string(), |b| format!("{b}B"));
        group.bench_with_input(
            BenchmarkId::new("mcp_session", format!("n{}_{label}", sizes[0])),
            &budget,
            |b, &budget| b.iter(|| run_cell(&d.graph, ks, budget).1.wall_ns),
        );
    }
    group.finish();
}

criterion_group!(benches, fig4);
criterion_main!(benches);
