//! Micro-benchmarks of the graph substrate: union-find, BFS, Dijkstra,
//! CSR construction — the deterministic machinery under the samplers.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ugraph_datasets::DatasetSpec;
use ugraph_graph::{bfs_distances, dijkstra, GraphBuilder, NodeId, UnionFind};

fn structures(c: &mut Criterion) {
    let d = DatasetSpec::Krogan.generate(1);
    let graph = d.graph;
    let n = graph.num_nodes();
    let m = graph.num_edges();
    let edges: Vec<(u32, u32, f64)> = graph.edges().map(|(_, u, v, p)| (u.0, v.0, p)).collect();

    let mut group = c.benchmark_group("micro_structures");
    group.throughput(Throughput::Elements(m as u64));

    group.bench_function("union_find_pass", |b| {
        let mut uf = UnionFind::new(n);
        b.iter(|| {
            uf.reset();
            for &(u, v, _) in &edges {
                uf.union(u, v);
            }
            uf.num_sets()
        })
    });

    group.bench_function("component_labels", |b| {
        let mut uf = UnionFind::new(n);
        for &(u, v, _) in &edges {
            uf.union(u, v);
        }
        let mut labels = vec![0u32; n];
        b.iter(|| uf.component_labels_into(&mut labels))
    });

    group.bench_function("bfs_full", |b| {
        let mut src = 0u32;
        b.iter(|| {
            let d = bfs_distances(&graph, NodeId(src % n as u32));
            src += 1;
            d.len()
        })
    });

    group.bench_function("dijkstra_log_weights", |b| {
        let mut src = 0u32;
        b.iter(|| {
            let d = dijkstra(&graph, NodeId(src % n as u32));
            src += 1;
            d.len()
        })
    });

    group.bench_function("csr_construction", |b| {
        b.iter(|| {
            let mut builder = GraphBuilder::with_capacity(n, m);
            for &(u, v, p) in &edges {
                builder.add_edge(u, v, p).unwrap();
            }
            builder.build().unwrap().num_edges()
        })
    });
    group.finish();
}

criterion_group!(benches, structures);
criterion_main!(benches);
