//! Micro-benchmarks of the Monte-Carlo sampling layer — the inner loop of
//! every algorithm in the paper (§4): world sampling, fused component
//! labeling, center-count queries, depth-limited BFS counts, and the
//! serial-vs-parallel comparison of the rayon sampling path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ugraph_datasets::DatasetSpec;
use ugraph_graph::{Bitset, NodeId, UnionFind};
use ugraph_sampling::{ComponentPool, McOracle, Oracle, SampleSchedule, WorldPool, WorldSampler};

fn sampling(c: &mut Criterion) {
    let d = DatasetSpec::Krogan.generate(1);
    let graph = d.graph;
    let n = graph.num_nodes();
    let m = graph.num_edges();

    let mut group = c.benchmark_group("micro_sampling");
    group.throughput(Throughput::Elements(m as u64));

    // Raw world sampling: one Bernoulli draw per edge.
    group.bench_function("sample_world_bitset", |b| {
        let sampler = WorldSampler::new(&graph, 7);
        let mut world = Bitset::with_len(m);
        let mut i = 0u64;
        b.iter(|| {
            sampler.sample_into(i, &mut world).unwrap();
            i += 1;
            world.count_ones()
        })
    });

    // Fused sampling + union-find component labeling.
    group.bench_function("sample_components_fused", |b| {
        let sampler = WorldSampler::new(&graph, 7);
        let mut uf = UnionFind::new(n);
        let mut labels = vec![0u32; n];
        let mut i = 0u64;
        b.iter(|| {
            let count = sampler.sample_components(i, &mut uf, &mut labels);
            i += 1;
            count
        })
    });
    group.finish();

    // Center-count queries against pools of growing size (the dominant
    // cost inside min-partial).
    let mut group = c.benchmark_group("counts_from_center");
    for r in [64usize, 256, 1024] {
        let mut pool = ComponentPool::new(&graph, 3, 0);
        pool.ensure(r);
        let mut counts = vec![0u32; n];
        group.throughput(Throughput::Elements(r as u64));
        group.bench_function(BenchmarkId::from_parameter(r), |b| {
            let mut center = 0u32;
            b.iter(|| {
                pool.counts_from_center(NodeId(center % n as u32), &mut counts);
                center += 1;
                counts[0]
            })
        });
    }
    group.finish();

    // Depth-limited counts (Table 2's workhorse).
    let mut group = c.benchmark_group("depth_counts");
    let mut pool = WorldPool::new(&graph, 3, 0);
    pool.ensure(128);
    for depth in [2u32, 4, 8] {
        let mut sel = vec![0u32; n];
        let mut cov = vec![0u32; n];
        let pool = &mut pool;
        group.bench_function(BenchmarkId::from_parameter(depth), |b| {
            let mut center = 0u32;
            b.iter(|| {
                pool.counts_within_depths(
                    NodeId(center % n as u32),
                    depth,
                    depth,
                    &mut sel,
                    &mut cov,
                );
                center += 1;
                cov[0]
            })
        });
    }
    group.finish();
}

/// Serial (1 thread) vs rayon-parallel (all cores) sampling on a ≥1k-node
/// instance, after asserting both configurations produce **identical**
/// oracle estimates for the same master seed.
fn parallel_oracle(c: &mut Criterion) {
    let d = DatasetSpec::Krogan.generate(1);
    let graph = d.graph;
    let n = graph.num_nodes();
    assert!(n >= 1000, "instance must have at least 1k nodes, got {n}");

    // Reproducibility gate: the benchmark is meaningless if the parallel
    // path computed something different.
    const SEED: u64 = 7;
    const SAMPLES: usize = 256;
    let mut serial_oracle = McOracle::new(&graph, SEED, 1, SampleSchedule::Fixed(SAMPLES), 0.1);
    let mut parallel_oracle = McOracle::new(&graph, SEED, 0, SampleSchedule::Fixed(SAMPLES), 0.1);
    serial_oracle.prepare(0.5).unwrap();
    parallel_oracle.prepare(0.5).unwrap();
    let mut row_serial = (vec![0.0; n], vec![0.0; n]);
    let mut row_parallel = (vec![0.0; n], vec![0.0; n]);
    for center in (0..n as u32).step_by(97) {
        serial_oracle.center_probs(NodeId(center), &mut row_serial.0, &mut row_serial.1).unwrap();
        parallel_oracle
            .center_probs(NodeId(center), &mut row_parallel.0, &mut row_parallel.1)
            .unwrap();
        assert_eq!(
            row_serial, row_parallel,
            "serial and parallel oracle estimates diverged at center {center}"
        );
    }
    drop((serial_oracle, parallel_oracle));

    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    if cores == 1 {
        println!(
            "note: only 1 CPU visible — the serial and rayon rows below are \
             expected to tie; run on a multicore machine to see the speedup"
        );
    }

    let mut group = c.benchmark_group("parallel_oracle");
    group.sample_size(10);
    group.throughput(Throughput::Elements(SAMPLES as u64));
    for (name, threads) in [("serial", 1usize), ("rayon", 0)] {
        // Pool generation: draw SAMPLES worlds and reduce them to
        // component partitions (the dominant cost of oracle preparation).
        group.bench_with_input(BenchmarkId::new("ensure", name), &threads, |b, &t| {
            b.iter(|| {
                let mut pool = ComponentPool::new(&graph, SEED, t);
                pool.ensure(SAMPLES);
                pool.num_samples()
            })
        });
    }
    for (name, threads) in [("serial", 1usize), ("rayon", 0)] {
        // Estimation: center-count queries against a prepared pool.
        let mut pool = ComponentPool::new(&graph, SEED, threads);
        pool.ensure(SAMPLES);
        let mut counts = vec![0u32; n];
        group.bench_function(BenchmarkId::new("counts_from_center", name), |b| {
            let mut center = 0u32;
            b.iter(|| {
                pool.counts_from_center(NodeId(center % n as u32), &mut counts);
                center += 1;
                counts[0]
            })
        });
    }
    group.finish();
}

criterion_group!(benches, sampling, parallel_oracle);
criterion_main!(benches);
