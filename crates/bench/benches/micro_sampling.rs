//! Micro-benchmarks of the Monte-Carlo sampling layer — the inner loop of
//! every algorithm in the paper (§4): world sampling, fused component
//! labeling, center-count queries, and depth-limited BFS counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ugraph_datasets::DatasetSpec;
use ugraph_graph::{Bitset, DepthBfs, NodeId, UnionFind};
use ugraph_sampling::{ComponentPool, WorldPool, WorldSampler};

fn sampling(c: &mut Criterion) {
    let d = DatasetSpec::Krogan.generate(1);
    let graph = d.graph;
    let n = graph.num_nodes();
    let m = graph.num_edges();

    let mut group = c.benchmark_group("micro_sampling");
    group.throughput(Throughput::Elements(m as u64));

    // Raw world sampling: one Bernoulli draw per edge.
    group.bench_function("sample_world_bitset", |b| {
        let sampler = WorldSampler::new(&graph, 7);
        let mut world = Bitset::with_len(m);
        let mut i = 0u64;
        b.iter(|| {
            sampler.sample_into(i, &mut world);
            i += 1;
            world.count_ones()
        })
    });

    // Fused sampling + union-find component labeling.
    group.bench_function("sample_components_fused", |b| {
        let sampler = WorldSampler::new(&graph, 7);
        let mut uf = UnionFind::new(n);
        let mut labels = vec![0u32; n];
        let mut i = 0u64;
        b.iter(|| {
            let count = sampler.sample_components(i, &mut uf, &mut labels);
            i += 1;
            count
        })
    });
    group.finish();

    // Center-count queries against pools of growing size (the dominant
    // cost inside min-partial).
    let mut group = c.benchmark_group("counts_from_center");
    for r in [64usize, 256, 1024] {
        let mut pool = ComponentPool::new(&graph, 3, 0);
        pool.ensure(r);
        let mut counts = vec![0u32; n];
        group.throughput(Throughput::Elements(r as u64));
        group.bench_with_input(BenchmarkId::from_parameter(r), &pool, |b, pool| {
            let mut center = 0u32;
            b.iter(|| {
                pool.counts_from_center(NodeId(center % n as u32), &mut counts);
                center += 1;
                counts[0]
            })
        });
    }
    group.finish();

    // Depth-limited counts (Table 2's workhorse).
    let mut group = c.benchmark_group("depth_counts");
    let mut pool = WorldPool::new(&graph, 3, 0);
    pool.ensure(128);
    for depth in [2u32, 4, 8] {
        let mut sel = vec![0u32; n];
        let mut cov = vec![0u32; n];
        let mut bfs = DepthBfs::new(n);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &pool, |b, pool| {
            let mut center = 0u32;
            b.iter(|| {
                pool.counts_within_depths(
                    NodeId(center % n as u32),
                    depth,
                    depth,
                    &mut sel,
                    &mut cov,
                    &mut bfs,
                );
                center += 1;
                cov[0]
            })
        });
    }
    group.finish();
}

criterion_group!(benches, sampling);
criterion_main!(benches);
