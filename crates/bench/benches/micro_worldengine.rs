//! Scalar vs. bit-parallel `WorldEngine` backends on the Krogan-like PPI
//! instance — the microbenchmark behind the backend seam.
//!
//! Before any timing, an **equality gate** asserts that both backends
//! return identical center counts and depth counts for the same master
//! seed; a benchmark comparing backends that disagree would be
//! meaningless.
//!
//! Besides the criterion groups, the bench emits machine-readable results
//! (median ns per operation and scalar/bit-parallel speedups) to
//! `BENCH_worldengine.json` in the repository root, so the performance
//! trajectory of the engine accumulates across PRs. Set `BENCH_SMOKE=1`
//! for a fast CI smoke run (equality gates on, minimal sampling).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ugraph_cluster::{
    acp_with_oracle, mcp, AcpInvocation, AcpResult, ClusterConfig, ClusterRequest, McpResult,
    SolveResult, UgraphSession,
};
use ugraph_datasets::DatasetSpec;
use ugraph_graph::NodeId;
use ugraph_sampling::{BitParallelPool, ComponentPool, EngineKind, McOracle, Oracle, WorldPool};

fn smoke() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| v != "0")
}

/// Median wall-clock nanoseconds of `reps` runs of `f`.
fn median_ns(reps: usize, mut f: impl FnMut()) -> u128 {
    let mut times: Vec<u128> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Asserts both backends produce identical counts on `graph`.
fn equality_gate(graph: &ugraph_graph::UncertainGraph, samples: usize) {
    const SEED: u64 = 41;
    let n = graph.num_nodes();
    let mut scalar = ComponentPool::new(graph, SEED, 1);
    let mut world = WorldPool::new(graph, SEED, 1);
    let mut bit = BitParallelPool::<1>::new(graph, SEED, 1);
    scalar.ensure(samples);
    world.ensure(samples);
    bit.ensure(samples);
    let mut a = vec![0u32; n];
    let mut b = vec![0u32; n];
    for center in (0..n as u32).step_by(211) {
        scalar.counts_from_center(NodeId(center), &mut a);
        bit.counts_from_center(NodeId(center), &mut b);
        assert_eq!(a, b, "backends disagree on center counts at {center} ({samples} samples)");
    }
    let (mut s1, mut c1) = (vec![0u32; n], vec![0u32; n]);
    let (mut s2, mut c2) = (vec![0u32; n], vec![0u32; n]);
    for center in (0..n as u32).step_by(419) {
        world.counts_within_depths(NodeId(center), 2, 4, &mut s1, &mut c1);
        bit.counts_within_depths(NodeId(center), 2, 4, &mut s2, &mut c2);
        assert_eq!(s1, s2, "backends disagree on select counts at {center}");
        assert_eq!(c1, c2, "backends disagree on cover counts at {center}");
    }
}

struct Comparison {
    name: &'static str,
    scalar_ns: u128,
    bitparallel_ns: u128,
}

impl Comparison {
    fn speedup(&self) -> f64 {
        self.scalar_ns as f64 / (self.bitparallel_ns as f64).max(1.0)
    }
}

/// Replays the pre-batching oracle access pattern: every candidate row is
/// one full per-center pool sweep (the `Oracle` trait's default batch
/// loop), with the row cache disabled. `min-partial` run against this
/// wrapper performs exactly the work the query layer did before the
/// batched/cached row layer existed.
struct PerRowOracle<'g>(McOracle<'g>);

impl Oracle for PerRowOracle<'_> {
    fn num_nodes(&self) -> usize {
        self.0.num_nodes()
    }
    fn epsilon(&self) -> f64 {
        self.0.epsilon()
    }
    fn prepare(&mut self, q: f64) -> Result<(), ugraph_sampling::SamplingError> {
        self.0.prepare(q)
    }
    fn num_samples(&self) -> usize {
        self.0.num_samples()
    }
    fn center_probs(
        &mut self,
        center: NodeId,
        select: &mut [f64],
        cover: &mut [f64],
    ) -> Result<(), ugraph_sampling::SamplingError> {
        self.0.center_probs(center, select, cover)
    }
    fn pair_prob(&mut self, u: NodeId, v: NodeId) -> Result<f64, ugraph_sampling::SamplingError> {
        self.0.pair_prob(u, v)
    }
    // identical_rows() stays false and center_probs_batch stays the default
    // per-center loop: both rows are materialized per candidate, as the
    // pre-batching code path did.
}

/// One engine's guess-schedule replay measurement.
struct Replay {
    engine: &'static str,
    /// Pre-PR access pattern: per-row sweeps, no cache.
    per_row_ns: u128,
    /// Batched rows + incremental row cache (the current default).
    cached_ns: u128,
}

impl Replay {
    fn speedup(&self) -> f64 {
        self.per_row_ns as f64 / (self.cached_ns as f64).max(1.0)
    }
}

/// Head-to-head medians for the JSON report (independent of criterion's
/// own calibration, so the file is stable and cheap to produce).
fn measure_comparisons(graph: &ugraph_graph::UncertainGraph, reps: usize) -> Vec<Comparison> {
    const SEED: u64 = 41;
    let n = graph.num_nodes();
    let mut results = Vec::new();
    let centers: Vec<u32> = (0..n as u32).step_by(n / 16).collect();

    // Pool generation at 256 samples: scalar pays union-find + labeling
    // per world, bit-parallel only packs Bernoulli draws into mask lanes.
    results.push(Comparison {
        name: "ensure_256",
        scalar_ns: median_ns(reps, || {
            let mut pool = ComponentPool::new(graph, SEED, 1);
            pool.ensure(256);
            assert_eq!(pool.num_samples(), 256);
        }),
        bitparallel_ns: median_ns(reps, || {
            let mut pool = BitParallelPool::<1>::new(graph, SEED, 1);
            pool.ensure(256);
            assert_eq!(pool.num_samples(), 256);
        }),
    });

    // Unlimited center counts per query against an already-built pool, at
    // 64 and 256 samples. This deliberately excludes pool generation, so
    // it flatters the scalar backend: ComponentPool prepaid the per-world
    // connectivity work (union-find + labels) inside `ensure`.
    for &(name, samples) in
        &[("center_counts_query_only_64", 64usize), ("center_counts_query_only_256", 256)]
    {
        let mut scalar = ComponentPool::new(graph, SEED, 1);
        let mut bit = BitParallelPool::<1>::new(graph, SEED, 1);
        scalar.ensure(samples);
        bit.ensure(samples);
        let mut counts = vec![0u32; n];
        let scalar_ns = median_ns(reps, || {
            for &c in &centers {
                scalar.counts_from_center(NodeId(c), &mut counts);
            }
        });
        let bitparallel_ns = median_ns(reps, || {
            for &c in &centers {
                bit.counts_from_center(NodeId(c), &mut counts);
            }
        });
        results.push(Comparison {
            name,
            scalar_ns: scalar_ns / centers.len() as u128,
            bitparallel_ns: bitparallel_ns / centers.len() as u128,
        });
    }

    // Depth-limited counts (d = 4) per query at 128 samples — the §3.4
    // workload where every scalar query is a fresh BFS per world.
    {
        let samples = 128;
        let mut scalar = WorldPool::new(graph, SEED, 1);
        let mut bit = BitParallelPool::<1>::new(graph, SEED, 1);
        scalar.ensure(samples);
        bit.ensure(samples);
        let mut sel = vec![0u32; n];
        let mut cov = vec![0u32; n];
        let scalar_ns = median_ns(reps, || {
            for &c in &centers {
                scalar.counts_within_depths(NodeId(c), 2, 4, &mut sel, &mut cov);
            }
        });
        let bitparallel_ns = median_ns(reps, || {
            for &c in &centers {
                bit.counts_within_depths(NodeId(c), 2, 4, &mut sel, &mut cov);
            }
        });
        results.push(Comparison {
            name: "depth4_counts_128",
            scalar_ns: scalar_ns / centers.len() as u128,
            bitparallel_ns: bitparallel_ns / centers.len() as u128,
        });
    }

    // End-to-end center-query rounds: generate the pool and answer 16
    // center queries — the shape of one min-partial guess (α = 1,
    // k ≈ 16), i.e. what the drivers actually pay per threshold. This is
    // the fair "center queries" comparison: the scalar backend's query
    // speed is bought by per-world connectivity work inside `ensure`.
    for &(name, samples) in &[("center_queries_64", 64usize), ("center_queries_256", 256)] {
        results.push(Comparison {
            name,
            scalar_ns: median_ns(reps, || {
                let mut pool = ComponentPool::new(graph, SEED, 1);
                pool.ensure(samples);
                let mut counts = vec![0u32; n];
                for &c in &centers {
                    pool.counts_from_center(NodeId(c), &mut counts);
                }
            }),
            bitparallel_ns: median_ns(reps, || {
                let mut pool = BitParallelPool::<1>::new(graph, SEED, 1);
                pool.ensure(samples);
                let mut counts = vec![0u32; n];
                for &c in &centers {
                    pool.counts_from_center(NodeId(c), &mut counts);
                }
            }),
        });
    }

    results
}

/// `batch_rows`: multi-center batched count rows, scalar vs bit-parallel.
/// Per-center queries are where bit-parallel loses to the scalar labels
/// (`center_counts_query_only`); batching amortizes the mask-BFS memory
/// traffic over all centers per traversal, which is the workload
/// `min-partial`'s candidate evaluation actually presents.
fn measure_batch_rows(graph: &ugraph_graph::UncertainGraph, reps: usize) -> Vec<Comparison> {
    const SEED: u64 = 41;
    let n = graph.num_nodes();
    let k = 16usize;
    let centers: Vec<NodeId> = (0..k as u32).map(|i| NodeId(i * (n as u32 / k as u32))).collect();
    let mut results = Vec::new();
    for &(name, samples) in &[("batch_rows_16x64", 64usize), ("batch_rows_16x256", 256)] {
        let mut scalar = ComponentPool::new(graph, SEED, 1);
        let mut bit = BitParallelPool::<1>::new(graph, SEED, 1);
        scalar.ensure(samples);
        bit.ensure(samples);
        // Equality gate: batched rows identical across backends and to the
        // sequential per-center rows.
        let mut a = vec![0u32; k * n];
        let mut b = vec![0u32; k * n];
        scalar.counts_from_centers(&centers, &mut a);
        bit.counts_from_centers(&centers, &mut b);
        assert_eq!(a, b, "backends disagree on batched rows ({samples} samples)");
        let mut row = vec![0u32; n];
        for (j, &c) in centers.iter().enumerate() {
            scalar.counts_from_center(c, &mut row);
            assert_eq!(&a[j * n..(j + 1) * n], &row[..], "batch differs from sequential");
        }
        results.push(Comparison {
            name,
            scalar_ns: median_ns(reps, || scalar.counts_from_centers(&centers, &mut a)),
            bitparallel_ns: median_ns(reps, || bit.counts_from_centers(&centers, &mut b)),
        });
    }
    results
}

/// One three-way `unlimited_query_adaptive` measurement: scalar labels vs
/// pure-mask bit-parallel vs the adaptive backend (bit-parallel + lazy
/// block finalization).
struct Tri {
    name: &'static str,
    scalar_ns: u128,
    bitparallel_ns: u128,
    adaptive_ns: u128,
}

impl Tri {
    /// Adaptive speedup over scalar labels (the acceptance gate:
    /// ≥ 1.0× on query-only unlimited counts).
    fn vs_scalar(&self) -> f64 {
        self.scalar_ns as f64 / (self.adaptive_ns as f64).max(1.0)
    }

    /// Adaptive speedup over the pure-mask backend.
    fn vs_bitparallel(&self) -> f64 {
        self.bitparallel_ns as f64 / (self.adaptive_ns as f64).max(1.0)
    }
}

/// `unlimited_query_adaptive`: the query shape the adaptive engine exists
/// for — unlimited-depth counts — measured cold (single pair, no
/// finalization paid) and warm (row queries and batches over finalized
/// blocks), equality-gated against the scalar labels.
fn measure_adaptive(graph: &ugraph_graph::UncertainGraph, reps: usize) -> Vec<Tri> {
    const SEED: u64 = 41;
    let n = graph.num_nodes();
    let samples = 256usize;
    let centers: Vec<u32> = (0..n as u32).step_by(n / 16).collect();

    // Equality gate: the adaptive pool must agree with scalar labels on
    // every row it will be timed on (finalized and unfinalized paths).
    {
        let mut scalar = ComponentPool::new(graph, SEED, 1);
        let mut adaptive = BitParallelPool::<1>::new_adaptive(graph, SEED, 1);
        scalar.ensure(samples);
        adaptive.ensure(samples);
        let mut a = vec![0u32; n];
        let mut b = vec![0u32; n];
        for &c in &centers {
            scalar.counts_from_center(NodeId(c), &mut a);
            adaptive.counts_from_center(NodeId(c), &mut b);
            assert_eq!(a, b, "adaptive disagrees with scalar at center {c}");
            assert_eq!(
                scalar.pair_count(NodeId(0), NodeId(c)),
                adaptive.pair_count(NodeId(0), NodeId(c)),
                "adaptive pair count disagrees at ({c})"
            );
        }
        let stats = adaptive.engine_stats();
        assert!(stats.finalized_blocks > 0, "warm adaptive pool did not finalize: {stats:?}");
    }

    let mut out = Vec::new();

    // Cold single pair: the heuristic keeps the adaptive pool on masks, so
    // no full-block labeling is paid for a one-off point query. Pools are
    // rebuilt per rep (a timed query must really be the pool's first).
    {
        let (u, v) = (NodeId(0), NodeId(centers[centers.len() / 2]));
        let time_cold = |mk: &mut dyn FnMut() -> u128| {
            let mut times: Vec<u128> = (0..reps.max(1)).map(|_| mk()).collect();
            times.sort_unstable();
            times[times.len() / 2]
        };
        let scalar_ns = time_cold(&mut || {
            let mut pool = ComponentPool::new(graph, SEED, 1);
            pool.ensure(samples);
            let t = Instant::now();
            std::hint::black_box(pool.pair_count(u, v));
            t.elapsed().as_nanos()
        });
        let bitparallel_ns = time_cold(&mut || {
            let mut pool = BitParallelPool::<1>::new(graph, SEED, 1);
            pool.ensure(samples);
            let t = Instant::now();
            std::hint::black_box(pool.pair_count(u, v));
            t.elapsed().as_nanos()
        });
        let adaptive_ns = time_cold(&mut || {
            let mut pool = BitParallelPool::<1>::new_adaptive(graph, SEED, 1);
            pool.ensure(samples);
            let t = Instant::now();
            std::hint::black_box(pool.pair_count(u, v));
            let ns = t.elapsed().as_nanos();
            assert_eq!(
                pool.engine_stats().finalized_lanes,
                0,
                "a cold single pair query must not pay labeling"
            );
            ns
        });
        out.push(Tri { name: "cold_pair_single_256", scalar_ns, bitparallel_ns, adaptive_ns });
    }

    // Warm query-only unlimited counts — the workload PR 2 recorded the
    // 0.09×–0.23× bit-parallel loss on. The adaptive pool is warmed by one
    // row query (finalizing every block); timing then measures pure label
    // scans on all three backends.
    {
        let mut scalar = ComponentPool::new(graph, SEED, 1);
        let mut mask = BitParallelPool::<1>::new(graph, SEED, 1);
        let mut adaptive = BitParallelPool::<1>::new_adaptive(graph, SEED, 1);
        scalar.ensure(samples);
        mask.ensure(samples);
        adaptive.ensure(samples);
        let mut counts = vec![0u32; n];
        adaptive.counts_from_center(NodeId(0), &mut counts);
        let scalar_ns = median_ns(reps, || {
            for &c in &centers {
                scalar.counts_from_center(NodeId(c), &mut counts);
            }
        });
        let bitparallel_ns = median_ns(reps, || {
            for &c in &centers {
                mask.counts_from_center(NodeId(c), &mut counts);
            }
        });
        let adaptive_ns = median_ns(reps, || {
            for &c in &centers {
                adaptive.counts_from_center(NodeId(c), &mut counts);
            }
        });
        out.push(Tri {
            name: "warm_center_counts_query_only_256",
            scalar_ns: scalar_ns / centers.len() as u128,
            bitparallel_ns: bitparallel_ns / centers.len() as u128,
            adaptive_ns: adaptive_ns / centers.len() as u128,
        });

        // Warm pair queries (objective evaluation's shape) on the same
        // already-finalized pool.
        let pairs: Vec<(NodeId, NodeId)> =
            centers.iter().map(|&c| (NodeId(c), NodeId((c + 7) % n as u32))).collect();
        let scalar_ns = median_ns(reps, || {
            for &(u, v) in &pairs {
                std::hint::black_box(scalar.pair_count(u, v));
            }
        });
        let bitparallel_ns = median_ns(reps, || {
            for &(u, v) in &pairs {
                std::hint::black_box(mask.pair_count(u, v));
            }
        });
        let adaptive_ns = median_ns(reps, || {
            for &(u, v) in &pairs {
                std::hint::black_box(adaptive.pair_count(u, v));
            }
        });
        out.push(Tri {
            name: "warm_pair_counts_256",
            scalar_ns: scalar_ns / pairs.len() as u128,
            bitparallel_ns: bitparallel_ns / pairs.len() as u128,
            adaptive_ns: adaptive_ns / pairs.len() as u128,
        });

        // Warm batched rows (one min-partial greedy step).
        let k = 16usize;
        let batch_centers: Vec<NodeId> =
            (0..k as u32).map(|i| NodeId(i * (n as u32 / k as u32))).collect();
        let mut rows = vec![0u32; k * n];
        let scalar_ns = median_ns(reps, || scalar.counts_from_centers(&batch_centers, &mut rows));
        let bitparallel_ns =
            median_ns(reps, || mask.counts_from_centers(&batch_centers, &mut rows));
        let adaptive_ns =
            median_ns(reps, || adaptive.counts_from_centers(&batch_centers, &mut rows));
        out.push(Tri { name: "warm_batch_rows_16x256", scalar_ns, bitparallel_ns, adaptive_ns });
    }

    // Pool generation: finalization is lazy, so adaptive generation must
    // stay within noise of the pure-mask backend.
    out.push(Tri {
        name: "ensure_256",
        scalar_ns: median_ns(reps, || {
            let mut pool = ComponentPool::new(graph, SEED, 1);
            pool.ensure(samples);
        }),
        bitparallel_ns: median_ns(reps, || {
            let mut pool = BitParallelPool::<1>::new(graph, SEED, 1);
            pool.ensure(samples);
        }),
        adaptive_ns: median_ns(reps, || {
            let mut pool = BitParallelPool::<1>::new_adaptive(graph, SEED, 1);
            pool.ensure(samples);
        }),
    });

    out
}

fn write_adaptive_json(
    graph: &ugraph_graph::UncertainGraph,
    name: &str,
    tris: &[Tri],
    replay: &[Replay],
    smoke: bool,
) {
    let mut rows = String::new();
    for (i, t) in tris.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"name\": \"{}\", \"scalar_ns\": {}, \"bitparallel_ns\": {}, \
             \"adaptive_ns\": {}, \"adaptive_vs_scalar\": {:.3}, \
             \"adaptive_vs_bitparallel\": {:.3}}}",
            t.name,
            t.scalar_ns,
            t.bitparallel_ns,
            t.adaptive_ns,
            t.vs_scalar(),
            t.vs_bitparallel()
        ));
    }
    let mut replays = String::new();
    for (i, r) in replay.iter().enumerate() {
        if i > 0 {
            replays.push_str(",\n");
        }
        replays.push_str(&format!(
            "    {{\"engine\": \"{}\", \"per_row_ns\": {}, \"cached_ns\": {}, \
             \"speedup\": {:.3}}}",
            r.engine,
            r.per_row_ns,
            r.cached_ns,
            r.speedup()
        ));
    }
    let json = format!(
        "{{\n  \"benchmark\": \"unlimited_query_adaptive\",\n  \"dataset\": \"{}\",\n  \
         \"nodes\": {},\n  \"edges\": {},\n  \"smoke\": {},\n  \"results\": [\n{}\n  ],\n  \
         \"guess_schedule_replay\": [\n{}\n  ]\n}}\n",
        name,
        graph.num_nodes(),
        graph.num_edges(),
        smoke,
        rows,
        replays
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_adaptive.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}

/// `guess_schedule_replay`: one full ACP guessing schedule (the paper's
/// Theorem-4 invocation, `α = n`, whose candidate sets overlap heavily
/// across iterations and guesses) end to end — the pre-PR per-row access
/// pattern vs batched rows + the incremental row cache.
fn measure_replay(graph: &ugraph_graph::UncertainGraph, smoke: bool) -> Vec<Replay> {
    let (k, p_l, reps) = if smoke { (2, 0.8, 1) } else { (4, 0.3, 2) };
    let cfg = ClusterConfig::default()
        .with_seed(17)
        .with_acp_invocation(AcpInvocation::Theory)
        .with_p_l(p_l)
        .with_threads(1);
    let run_cached = |kind: EngineKind| -> (AcpResult, u128) {
        let t = Instant::now();
        let mut oracle = McOracle::with_engine(graph, 99, 1, cfg.schedule, cfg.epsilon, kind);
        let r = acp_with_oracle(&mut oracle, k, &cfg).expect("acp (cached)");
        (r, t.elapsed().as_nanos())
    };
    let run_per_row = |kind: EngineKind| -> (AcpResult, u128) {
        let t = Instant::now();
        let mut oracle = PerRowOracle(
            McOracle::with_engine(graph, 99, 1, cfg.schedule, cfg.epsilon, kind)
                .with_row_cache(false),
        );
        let r = acp_with_oracle(&mut oracle, k, &cfg).expect("acp (per-row)");
        (r, t.elapsed().as_nanos())
    };
    let mut out = Vec::new();
    let mut reference: Option<AcpResult> = None;
    for kind in [EngineKind::Scalar, EngineKind::BitParallel, EngineKind::Adaptive] {
        let mut cached_ns = u128::MAX;
        let mut per_row_ns = u128::MAX;
        for _ in 0..reps {
            let (cached, t_cached) = run_cached(kind);
            let (plain, t_plain) = run_per_row(kind);
            // Equality gate: the batched + cached schedule must reproduce
            // the pre-PR results bit for bit.
            assert_eq!(
                cached.clustering,
                plain.clustering,
                "{} replay: cached clustering differs",
                kind.name()
            );
            assert_eq!(
                cached.assign_probs,
                plain.assign_probs,
                "{} replay: cached assignment probabilities differ",
                kind.name()
            );
            assert_eq!(cached.guesses, plain.guesses);
            assert!(cached.row_cache.hits > 0, "{} replay exercised no cache hits", kind.name());
            // Cross-engine gate: every backend replays the identical
            // schedule (count-identity through the whole driver).
            match &reference {
                None => reference = Some(cached),
                Some(r) => {
                    assert_eq!(r.clustering, cached.clustering, "{} diverges", kind.name());
                    assert_eq!(r.assign_probs, cached.assign_probs, "{} diverges", kind.name());
                }
            }
            cached_ns = cached_ns.min(t_cached);
            per_row_ns = per_row_ns.min(t_plain);
        }
        out.push(Replay { engine: kind.name(), per_row_ns, cached_ns });
    }
    out
}

/// One engine's k-sweep measurement: `k_lo..=k_hi` MCP requests served
/// cold (one `mcp()` free-function call per k, each resampling its pool
/// from scratch) vs warm (one [`UgraphSession`] serving every k from a
/// shared grow-only pool and row caches).
struct Sweep {
    engine: &'static str,
    cold_ns: u128,
    warm_ns: u128,
    /// Worlds the cold calls sampled in total vs worlds the session holds.
    cold_worlds: usize,
    warm_worlds: usize,
    /// Cache service of the warm sweep (hits + top-ups = reused rows).
    hits: usize,
    topups: usize,
    fulls: usize,
}

impl Sweep {
    fn speedup(&self) -> f64 {
        self.cold_ns as f64 / (self.warm_ns as f64).max(1.0)
    }
}

/// `k_sweep_session`: the acceptance workload — k = 2..=10 (2..=4 in
/// smoke mode) on the Krogan-like instance through one session vs
/// independent `mcp` calls, equality-gated per k: the warm request must
/// reproduce the cold clustering, assignment probabilities, guess trace,
/// and sample count bit for bit.
fn measure_k_sweep(
    graph: &ugraph_graph::UncertainGraph,
    smoke: bool,
) -> (usize, usize, Vec<Sweep>) {
    let (k_lo, k_hi) = if smoke { (2usize, 4usize) } else { (2usize, 10usize) };
    let reps = if smoke { 1 } else { 3 };
    let mut out = Vec::new();
    for kind in [EngineKind::Scalar, EngineKind::BitParallel, EngineKind::Adaptive] {
        let cfg = ClusterConfig::default().with_seed(23).with_engine(kind).with_threads(1);
        let mut best_cold = u128::MAX;
        let mut best_warm = u128::MAX;
        let mut cold_worlds = 0usize;
        let mut warm_stats = None;
        for _ in 0..reps {
            let t = Instant::now();
            let cold: Vec<McpResult> =
                (k_lo..=k_hi).map(|k| mcp(graph, k, &cfg).expect("cold mcp")).collect();
            best_cold = best_cold.min(t.elapsed().as_nanos());

            let t = Instant::now();
            let mut session = UgraphSession::new(graph, cfg.clone()).expect("session");
            let warm: Vec<SolveResult> = (k_lo..=k_hi)
                .map(|k| session.solve(ClusterRequest::mcp(k)).expect("warm mcp"))
                .collect();
            best_warm = best_warm.min(t.elapsed().as_nanos());

            // Equality gate: a faster sweep that answers differently
            // would be meaningless.
            for (w, c) in warm.iter().zip(&cold) {
                assert_eq!(w.clustering, c.clustering, "{} k-sweep diverges", kind.name());
                assert_eq!(w.assign_probs, c.assign_probs, "{} k-sweep probs diverge", kind.name());
                assert_eq!((w.guesses, w.samples_used), (c.guesses, c.samples_used));
            }
            let stats = session.stats();
            assert!(
                stats.row_cache.hits + stats.row_cache.topups > 0,
                "{} warm sweep reused no rows",
                kind.name()
            );
            cold_worlds = cold.iter().map(|r| r.samples_used).sum();
            warm_stats = Some(stats);
        }
        let stats = warm_stats.expect("at least one rep");
        out.push(Sweep {
            engine: kind.name(),
            cold_ns: best_cold,
            warm_ns: best_warm,
            cold_worlds,
            warm_worlds: stats.worlds_held,
            hits: stats.row_cache.hits,
            topups: stats.row_cache.topups,
            fulls: stats.row_cache.fulls,
        });
    }
    (k_lo, k_hi, out)
}

fn write_session_json(
    graph: &ugraph_graph::UncertainGraph,
    name: &str,
    k_lo: usize,
    k_hi: usize,
    sweeps: &[Sweep],
    smoke: bool,
) {
    let mut rows = String::new();
    for (i, s) in sweeps.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"engine\": \"{}\", \"cold_ns\": {}, \"warm_ns\": {}, \"speedup\": {:.3}, \
             \"cold_worlds\": {}, \"warm_worlds\": {}, \"hits\": {}, \"topups\": {}, \
             \"fulls\": {}}}",
            s.engine,
            s.cold_ns,
            s.warm_ns,
            s.speedup(),
            s.cold_worlds,
            s.warm_worlds,
            s.hits,
            s.topups,
            s.fulls
        ));
    }
    let json = format!(
        "{{\n  \"benchmark\": \"k_sweep_session\",\n  \"dataset\": \"{}\",\n  \"nodes\": {},\n  \
         \"edges\": {},\n  \"smoke\": {},\n  \"k_min\": {},\n  \"k_max\": {},\n  \
         \"sweeps\": [\n{}\n  ]\n}}\n",
        name,
        graph.num_nodes(),
        graph.num_edges(),
        smoke,
        k_lo,
        k_hi,
        rows
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_session.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}

fn write_oracle_json(
    graph: &ugraph_graph::UncertainGraph,
    name: &str,
    batch: &[Comparison],
    replay: &[Replay],
    smoke: bool,
) {
    let mut rows = String::new();
    for (i, r) in batch.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"name\": \"{}\", \"scalar_ns\": {}, \"bitparallel_ns\": {}, \
             \"speedup\": {:.3}}}",
            r.name,
            r.scalar_ns,
            r.bitparallel_ns,
            r.speedup()
        ));
    }
    let mut replays = String::new();
    for (i, r) in replay.iter().enumerate() {
        if i > 0 {
            replays.push_str(",\n");
        }
        replays.push_str(&format!(
            "    {{\"engine\": \"{}\", \"per_row_ns\": {}, \"cached_ns\": {}, \
             \"speedup\": {:.3}}}",
            r.engine,
            r.per_row_ns,
            r.cached_ns,
            r.speedup()
        ));
    }
    let json = format!(
        "{{\n  \"benchmark\": \"micro_oracle\",\n  \"dataset\": \"{}\",\n  \"nodes\": {},\n  \
         \"edges\": {},\n  \"smoke\": {},\n  \"batch_rows\": [\n{}\n  ],\n  \
         \"guess_schedule_replay\": [\n{}\n  ]\n}}\n",
        name,
        graph.num_nodes(),
        graph.num_edges(),
        smoke,
        rows,
        replays
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_oracle.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}

/// One block-width scenario: median ns per operation at widths 64, 256,
/// and 512 worlds per mask block.
struct WidthRow {
    name: &'static str,
    w64_ns: u128,
    w256_ns: u128,
    w512_ns: u128,
}

impl WidthRow {
    fn speedup_256(&self) -> f64 {
        self.w64_ns as f64 / (self.w256_ns as f64).max(1.0)
    }

    fn speedup_512(&self) -> f64 {
        self.w64_ns as f64 / (self.w512_ns as f64).max(1.0)
    }
}

/// Per-width timings of the scenarios in the `block_width_sweep` group.
struct WidthTimes {
    ensure_ns: u128,
    depth_ns: u128,
    row_ns: u128,
    pair_ns: u128,
    batch_ns: u128,
    warm_batch_ns: u128,
}

/// Counts sampled at one width, compared across widths before timing.
struct WidthGate {
    rows: Vec<u32>,
    depths: Vec<u32>,
    batch: Vec<u32>,
    pairs: Vec<usize>,
}

/// Measures every width scenario at one block width `W` and checks the
/// counts against `gate` (the width-64 reference) before any timing.
fn measure_one_width<const W: usize>(
    graph: &ugraph_graph::UncertainGraph,
    reps: usize,
    samples: usize,
    gate: &mut Option<WidthGate>,
) -> WidthTimes {
    const SEED: u64 = 41;
    let n = graph.num_nodes();
    let centers: Vec<u32> = (0..n as u32).step_by(n / 16).collect();
    let k = 16usize;
    let batch_centers: Vec<NodeId> =
        (0..k as u32).map(|i| NodeId(i * (n as u32 / k as u32))).collect();

    let mut pool = BitParallelPool::<W>::new(graph, SEED, 1);
    pool.ensure(samples);
    assert_eq!(pool.num_samples(), samples);

    // Equality gate: all counts below must be bit-identical to width 64.
    {
        let mut rows = Vec::new();
        let mut row = vec![0u32; n];
        let (mut sel, mut cov) = (vec![0u32; n], vec![0u32; n]);
        let mut depths = Vec::new();
        let mut pairs = Vec::new();
        for &c in &centers {
            pool.counts_from_center(NodeId(c), &mut row);
            rows.extend_from_slice(&row);
            pool.counts_within_depths(NodeId(c), 2, 4, &mut sel, &mut cov);
            depths.extend_from_slice(&sel);
            depths.extend_from_slice(&cov);
            pairs.push(pool.pair_count(NodeId(0), NodeId(c)));
        }
        let mut batch = vec![0u32; k * n];
        pool.counts_from_centers(&batch_centers, &mut batch);
        let fp = WidthGate { rows, depths, batch, pairs };
        match gate {
            None => *gate = Some(fp),
            Some(want) => {
                assert_eq!(want.rows, fp.rows, "width {} center rows differ", W * 64);
                assert_eq!(want.depths, fp.depths, "width {} depth counts differ", W * 64);
                assert_eq!(want.batch, fp.batch, "width {} batch rows differ", W * 64);
                assert_eq!(want.pairs, fp.pairs, "width {} pair counts differ", W * 64);
            }
        }
    }

    // Pool generation. Dominated by the per-edge Bernoulli draws (the RNG
    // stream is pinned per world for cross-width identity), so the wide
    // win here is bounded by the non-RNG fraction — see HOTPATH.md.
    let ensure_ns = median_ns(reps, || {
        let mut p = BitParallelPool::<W>::new(graph, SEED, 1);
        p.ensure(samples);
    });

    // Depth-limited counts (d = 4): frontier expansion over Mask<W>
    // blocks, the workload wide words exist for.
    let (mut sel, mut cov) = (vec![0u32; n], vec![0u32; n]);
    let depth_ns = median_ns(reps, || {
        for &c in &centers {
            pool.counts_within_depths(NodeId(c), 2, 4, &mut sel, &mut cov);
        }
    }) / centers.len() as u128;

    // Unlimited mask-path rows, pairs, and batched rows on the pure-mask
    // pool (no label finalization: every query runs the mask kernels).
    let mut row = vec![0u32; n];
    let row_ns = median_ns(reps, || {
        for &c in &centers {
            pool.counts_from_center(NodeId(c), &mut row);
        }
    }) / centers.len() as u128;
    let pairs: Vec<(NodeId, NodeId)> =
        centers.iter().map(|&c| (NodeId(c), NodeId((c + 7) % n as u32))).collect();
    let pair_ns = median_ns(reps, || {
        for &(u, v) in &pairs {
            std::hint::black_box(pool.pair_count(u, v));
        }
    }) / pairs.len() as u128;
    let mut rows = vec![0u32; k * n];
    let batch_ns = median_ns(reps, || pool.counts_from_centers(&batch_centers, &mut rows));

    // Warm adaptive batched rows: labels are per-world and thus
    // width-independent once finalized; this checks the width seam adds
    // no overhead on the label path.
    let mut adaptive = BitParallelPool::<W>::new_adaptive(graph, SEED, 1);
    adaptive.ensure(samples);
    adaptive.counts_from_center(NodeId(0), &mut row);
    let warm_batch_ns = median_ns(reps, || adaptive.counts_from_centers(&batch_centers, &mut rows));

    WidthTimes { ensure_ns, depth_ns, row_ns, pair_ns, batch_ns, warm_batch_ns }
}

/// `block_width_sweep`: the same pool workloads at 64-, 256-, and 512-world
/// blocks, equality-gated across widths (identical worlds by construction,
/// so any divergence is a kernel bug).
fn measure_width_sweep(graph: &ugraph_graph::UncertainGraph, reps: usize) -> Vec<WidthRow> {
    let samples = 512usize;
    let mut gate = None;
    let w1 = measure_one_width::<1>(graph, reps, samples, &mut gate);
    let w4 = measure_one_width::<4>(graph, reps, samples, &mut gate);
    let w8 = measure_one_width::<8>(graph, reps, samples, &mut gate);
    println!("width equality gate passed: counts identical at 64/256/512-world blocks");
    vec![
        WidthRow {
            name: "ensure_512",
            w64_ns: w1.ensure_ns,
            w256_ns: w4.ensure_ns,
            w512_ns: w8.ensure_ns,
        },
        WidthRow {
            name: "depth4_counts_512",
            w64_ns: w1.depth_ns,
            w256_ns: w4.depth_ns,
            w512_ns: w8.depth_ns,
        },
        WidthRow {
            name: "mask_center_rows_512",
            w64_ns: w1.row_ns,
            w256_ns: w4.row_ns,
            w512_ns: w8.row_ns,
        },
        WidthRow {
            name: "mask_pair_counts_512",
            w64_ns: w1.pair_ns,
            w256_ns: w4.pair_ns,
            w512_ns: w8.pair_ns,
        },
        WidthRow {
            name: "batch_rows_16x512",
            w64_ns: w1.batch_ns,
            w256_ns: w4.batch_ns,
            w512_ns: w8.batch_ns,
        },
        WidthRow {
            name: "warm_batch_rows_16x512",
            w64_ns: w1.warm_batch_ns,
            w256_ns: w4.warm_batch_ns,
            w512_ns: w8.warm_batch_ns,
        },
    ]
}

fn write_width_json(
    graph: &ugraph_graph::UncertainGraph,
    name: &str,
    rows: &[WidthRow],
    smoke: bool,
) {
    let mut body = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            body.push_str(",\n");
        }
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"w64_ns\": {}, \"w256_ns\": {}, \"w512_ns\": {}, \
             \"speedup_256\": {:.3}, \"speedup_512\": {:.3}}}",
            r.name,
            r.w64_ns,
            r.w256_ns,
            r.w512_ns,
            r.speedup_256(),
            r.speedup_512()
        ));
    }
    let json = format!(
        "{{\n  \"benchmark\": \"block_width_sweep\",\n  \"dataset\": \"{}\",\n  \
         \"nodes\": {},\n  \"edges\": {},\n  \"smoke\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        name,
        graph.num_nodes(),
        graph.num_edges(),
        smoke,
        body
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_width.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}

fn write_json(
    graph: &ugraph_graph::UncertainGraph,
    name: &str,
    results: &[Comparison],
    smoke: bool,
) {
    let mut rows = String::new();
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"name\": \"{}\", \"scalar_ns\": {}, \"bitparallel_ns\": {}, \
             \"speedup\": {:.3}}}",
            r.name,
            r.scalar_ns,
            r.bitparallel_ns,
            r.speedup()
        ));
    }
    let json = format!(
        "{{\n  \"benchmark\": \"micro_worldengine\",\n  \"dataset\": \"{}\",\n  \
         \"nodes\": {},\n  \"edges\": {},\n  \"smoke\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        name,
        graph.num_nodes(),
        graph.num_edges(),
        smoke,
        rows
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_worldengine.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}

fn worldengine(c: &mut Criterion) {
    let d = DatasetSpec::Krogan.generate(1);
    let graph = d.graph;
    let n = graph.num_nodes();
    assert!(n >= 1000, "instance must have at least 1k nodes, got {n}");

    // Equality gates, including a non-multiple-of-64 size.
    equality_gate(&graph, 64);
    equality_gate(&graph, if smoke() { 100 } else { 250 });
    println!("equality gate passed: scalar and bit-parallel counts identical");

    // Machine-readable comparison.
    let reps = if smoke() { 3 } else { 9 };
    let results = measure_comparisons(&graph, reps);
    for r in &results {
        println!(
            "  {:<28} scalar {:>12} ns   bitparallel {:>12} ns   speedup {:>6.2}x",
            r.name,
            r.scalar_ns,
            r.bitparallel_ns,
            r.speedup()
        );
    }
    write_json(&graph, &d.name, &results, smoke());

    // Batched-row and guess-schedule-replay groups (equality gates inside).
    let batch = measure_batch_rows(&graph, reps);
    for r in &batch {
        println!(
            "  {:<28} scalar {:>12} ns   bitparallel {:>12} ns   speedup {:>6.2}x",
            r.name,
            r.scalar_ns,
            r.bitparallel_ns,
            r.speedup()
        );
    }
    let replay = measure_replay(&graph, smoke());
    for r in &replay {
        println!(
            "  replay/{:<21} per-row {:>11} ns   batched+cache {:>10} ns   speedup {:>6.2}x",
            r.engine,
            r.per_row_ns,
            r.cached_ns,
            r.speedup()
        );
    }
    write_oracle_json(&graph, &d.name, &batch, &replay, smoke());

    // The adaptive three-way group: scalar labels vs pure-mask vs
    // bit-parallel + lazy finalization (equality gates inside).
    let tris = measure_adaptive(&graph, reps);
    for t in &tris {
        println!(
            "  adaptive/{:<33} scalar {:>11} ns   mask {:>11} ns   adaptive {:>11} ns   vs \
             scalar {:>5.2}x   vs mask {:>5.2}x",
            t.name,
            t.scalar_ns,
            t.bitparallel_ns,
            t.adaptive_ns,
            t.vs_scalar(),
            t.vs_bitparallel()
        );
    }
    write_adaptive_json(&graph, &d.name, &tris, &replay, smoke());

    // Block-width sweep: the same kernels at 64/256/512 worlds per block
    // (equality gates inside).
    let widths = measure_width_sweep(&graph, reps);
    for r in &widths {
        println!(
            "  width/{:<24} w64 {:>12} ns   w256 {:>12} ns   w512 {:>12} ns   256 vs 64 \
             {:>5.2}x   512 vs 64 {:>5.2}x",
            r.name,
            r.w64_ns,
            r.w256_ns,
            r.w512_ns,
            r.speedup_256(),
            r.speedup_512()
        );
    }
    write_width_json(&graph, &d.name, &widths, smoke());

    // k-sweep through one session vs independent cold calls
    // (equality-gated inside).
    let (k_lo, k_hi, sweeps) = measure_k_sweep(&graph, smoke());
    for s in &sweeps {
        println!(
            "  k_sweep_session/{:<13} cold {:>12} ns   warm session {:>11} ns   speedup \
             {:>6.2}x   ({} hits, {} top-ups, {} fulls; {} vs {} worlds)",
            s.engine,
            s.cold_ns,
            s.warm_ns,
            s.speedup(),
            s.hits,
            s.topups,
            s.fulls,
            s.warm_worlds,
            s.cold_worlds
        );
    }
    write_session_json(&graph, &d.name, k_lo, k_hi, &sweeps, smoke());

    // Criterion groups for interactive exploration.
    const SEED: u64 = 41;
    let mut counts = vec![0u32; n];
    let mut group = c.benchmark_group("micro_worldengine");
    if smoke() {
        // 10 is the minimum real criterion accepts; keep the smoke config
        // valid for both the vendored subset and the real crate.
        group.sample_size(10);
        group.measurement_time(Duration::from_millis(40));
    }
    for (label, samples) in [("64", 64usize), ("256", 256)] {
        let mut scalar = ComponentPool::new(&graph, SEED, 1);
        scalar.ensure(samples);
        group.bench_function(BenchmarkId::new("center_counts/scalar", label), |b| {
            let mut center = 0u32;
            b.iter(|| {
                scalar.counts_from_center(NodeId(center % n as u32), &mut counts);
                center = center.wrapping_add(97);
                counts[0]
            })
        });
        let mut bit = BitParallelPool::<1>::new(&graph, SEED, 1);
        bit.ensure(samples);
        group.bench_function(BenchmarkId::new("center_counts/bitparallel", label), |b| {
            let mut center = 0u32;
            b.iter(|| {
                bit.counts_from_center(NodeId(center % n as u32), &mut counts);
                center = center.wrapping_add(97);
                counts[0]
            })
        });
    }
    {
        // Batched 16-center rows: the shape of one min-partial greedy step.
        let samples = 256;
        let k = 16usize;
        let centers: Vec<NodeId> =
            (0..k as u32).map(|i| NodeId(i * (n as u32 / k as u32))).collect();
        let mut rows = vec![0u32; k * n];
        let mut scalar = ComponentPool::new(&graph, SEED, 1);
        scalar.ensure(samples);
        group.bench_function(BenchmarkId::new("batch_rows/scalar", samples), |b| {
            b.iter(|| {
                scalar.counts_from_centers(&centers, &mut rows);
                rows[0]
            })
        });
        let mut bit = BitParallelPool::<1>::new(&graph, SEED, 1);
        bit.ensure(samples);
        group.bench_function(BenchmarkId::new("batch_rows/bitparallel", samples), |b| {
            b.iter(|| {
                bit.counts_from_centers(&centers, &mut rows);
                rows[0]
            })
        });
    }
    {
        // Warm adaptive center counts for interactive comparison with the
        // scalar/bitparallel `center_counts` entries above.
        let samples = 256;
        let mut adaptive = BitParallelPool::<1>::new_adaptive(&graph, SEED, 1);
        adaptive.ensure(samples);
        adaptive.counts_from_center(NodeId(0), &mut counts);
        group.bench_function(BenchmarkId::new("center_counts/adaptive", samples), |b| {
            let mut center = 0u32;
            b.iter(|| {
                adaptive.counts_from_center(NodeId(center % n as u32), &mut counts);
                center = center.wrapping_add(97);
                counts[0]
            })
        });
    }
    {
        let samples = 128;
        let mut sel = vec![0u32; n];
        let mut cov = vec![0u32; n];
        let mut scalar = WorldPool::new(&graph, SEED, 1);
        scalar.ensure(samples);
        group.bench_function(BenchmarkId::new("depth4_counts/scalar", samples), |b| {
            let mut center = 0u32;
            b.iter(|| {
                scalar.counts_within_depths(NodeId(center % n as u32), 2, 4, &mut sel, &mut cov);
                center = center.wrapping_add(97);
                cov[0]
            })
        });
        let mut bit = BitParallelPool::<1>::new(&graph, SEED, 1);
        bit.ensure(samples);
        group.bench_function(BenchmarkId::new("depth4_counts/bitparallel", samples), |b| {
            let mut center = 0u32;
            b.iter(|| {
                bit.counts_within_depths(NodeId(center % n as u32), 2, 4, &mut sel, &mut cov);
                center = center.wrapping_add(97);
                cov[0]
            })
        });
    }
    group.finish();

    // Dedicated criterion group for the session k-sweep. Each iteration is
    // a whole sweep, so the sample size stays small in every mode; the
    // JSON above covers the full acceptance range.
    let mut sweep_group = c.benchmark_group("k_sweep_session");
    sweep_group.sample_size(10);
    if smoke() {
        sweep_group.measurement_time(Duration::from_millis(40));
    }
    let cfg = ClusterConfig::default().with_seed(23).with_threads(1);
    sweep_group.bench_function("cold_calls/k2_4", |b| {
        b.iter(|| (2..=4).map(|k| mcp(&graph, k, &cfg).expect("cold mcp").guesses).sum::<usize>())
    });
    sweep_group.bench_function("warm_session/k2_4", |b| {
        b.iter(|| {
            let mut session = UgraphSession::new(&graph, cfg.clone()).expect("session");
            (2..=4)
                .map(|k| session.solve(ClusterRequest::mcp(k)).expect("warm mcp").guesses)
                .sum::<usize>()
        })
    });
    sweep_group.finish();

    // Interactive width exploration: batched rows per block width (the
    // sweep JSON above covers the full scenario set).
    let mut width_group = c.benchmark_group("block_width_sweep");
    if smoke() {
        width_group.sample_size(10);
        width_group.measurement_time(Duration::from_millis(40));
    }
    macro_rules! width_bench {
        ($w:literal, $label:expr) => {{
            let samples = 512;
            let k = 16usize;
            let centers: Vec<NodeId> =
                (0..k as u32).map(|i| NodeId(i * (n as u32 / k as u32))).collect();
            let mut rows = vec![0u32; k * n];
            let mut pool = BitParallelPool::<$w>::new(&graph, SEED, 1);
            pool.ensure(samples);
            width_group.bench_function(BenchmarkId::new("batch_rows", $label), |b| {
                b.iter(|| {
                    pool.counts_from_centers(&centers, &mut rows);
                    rows[0]
                })
            });
        }};
    }
    width_bench!(1, "64");
    width_bench!(4, "256");
    width_bench!(8, "512");
    width_group.finish();
}

criterion_group!(benches, worldengine);
criterion_main!(benches);
