//! Ablation benches for the design choices the paper discusses in §5:
//! the candidate-set size α, the guess-schedule parameter γ and strategy,
//! and the Monte-Carlo sample schedule. Each knob is timed on the same
//! Gavin-like instance (the hardest probability regime) at fixed k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ugraph_cluster::{acp, mcp, ClusterConfig, GuessStrategy};
use ugraph_datasets::DatasetSpec;
use ugraph_sampling::SampleSchedule;

const K: usize = 50;

fn ablations(c: &mut Criterion) {
    let d = DatasetSpec::Gavin.generate(1);
    let graph = d.graph;

    let mut group = c.benchmark_group("ablation_alpha");
    group.sample_size(10);
    for alpha in [1usize, 8, 64] {
        let cfg = ClusterConfig::default().with_alpha(alpha).with_seed(1);
        group.bench_with_input(BenchmarkId::from_parameter(alpha), &graph, |b, g| {
            b.iter(|| acp(g, K, &cfg).unwrap().avg_prob_estimate)
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_gamma");
    group.sample_size(10);
    for gamma_x100 in [5u32, 10, 50] {
        let cfg = ClusterConfig::default().with_gamma(f64::from(gamma_x100) / 100.0).with_seed(1);
        group.bench_with_input(BenchmarkId::from_parameter(gamma_x100), &graph, |b, g| {
            b.iter(|| mcp(g, K, &cfg).unwrap().min_prob_estimate)
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_guess_strategy");
    group.sample_size(10);
    for (name, strategy) in
        [("accelerated", GuessStrategy::Accelerated), ("geometric", GuessStrategy::Geometric)]
    {
        let cfg = ClusterConfig::default().with_guess(strategy).with_seed(1);
        group.bench_with_input(BenchmarkId::from_parameter(name), &graph, |b, g| {
            b.iter(|| mcp(g, K, &cfg).unwrap().guesses)
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_schedule");
    group.sample_size(10);
    let schedules: [(&str, SampleSchedule); 3] = [
        ("fixed50", SampleSchedule::Fixed(50)),
        ("fixed500", SampleSchedule::Fixed(500)),
        ("practical", SampleSchedule::practical()),
    ];
    for (name, schedule) in schedules {
        let cfg = ClusterConfig::default().with_schedule(schedule).with_seed(1);
        group.bench_with_input(BenchmarkId::from_parameter(name), &graph, |b, g| {
            b.iter(|| mcp(g, K, &cfg).unwrap().samples_used)
        });
    }
    group.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);
