//! Figure 3 (running times) as a Criterion benchmark: the four algorithms
//! on Collins-like and Gavin-like at one MCL-derived granularity each.
//!
//! The `experiments fig3` binary prints the full 4 × 3 grid with paper
//! values; this bench gives statistically sound timings for the subset
//! that fits a Criterion budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ugraph_bench::{run_algo, Algo};
use ugraph_datasets::DatasetSpec;

fn fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_runtime");
    group.sample_size(10);

    for spec in [DatasetSpec::Collins, DatasetSpec::Gavin] {
        let d = spec.generate(1);
        let graph = d.graph;
        // Fix the granularity once per dataset (MCL at inflation 2.0, the
        // cheapest of the paper's settings).
        let mcl_out = run_algo(&graph, Algo::Mcl { inflation_x100: 200 }, 0, 1).expect("mcl runs");
        let k = mcl_out.clustering.num_clusters();

        for (algo, name) in [
            (Algo::Gmm, "gmm"),
            (Algo::Mcl { inflation_x100: 200 }, "mcl"),
            (Algo::Mcp, "mcp"),
            (Algo::Acp, "acp"),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("{}-k{k}", d.name)),
                &graph,
                |b, g| b.iter(|| run_algo(g, algo, k, 1).map(|out| out.clustering.num_clusters())),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig3);
criterion_main!(benches);
