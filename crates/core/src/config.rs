//! Configuration of the clustering drivers.

use std::time::Duration;

use ugraph_sampling::{BlockWidth, CancelToken, EngineKind, SampleSchedule};

use crate::error::ClusterError;

/// How the probability threshold `q` is lowered across guesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum GuessStrategy {
    /// The schedule of Algorithms 2/3: `q ← q/(1+γ)` starting from 1.
    /// Faithful to the pseudocode; needs `Θ(log_{1+γ} 1/p_opt)` guesses.
    Geometric,
    /// The accelerated schedule of the paper's implementation (§5):
    /// `q_i = max{1 − γ·2^i, p_L}`, followed by a binary search between the
    /// last failing and the first succeeding guess, stopping when the ratio
    /// between lower and upper bound exceeds `1 − γ`. Equivalent to the
    /// geometric schedule up to constants (§5) but needs far fewer guesses.
    #[default]
    Accelerated,
}

/// Which `min-partial` invocation the ACP driver uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AcpInvocation {
    /// Theorem 4's invocation `min-partial(G, k, q³, n, q)`: cover threshold
    /// `q³`, selection threshold `q`, candidate set = all uncovered nodes.
    Theory,
    /// The paper's practical invocation `min-partial(G, k, q, 1, q)` (§5),
    /// chosen by the authors "after testing different combinations" for
    /// better time performance at equal quality.
    #[default]
    Practical,
}

/// What an interrupted solve returns (deadline passed or token fired).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DegradeMode {
    /// Return a typed error —
    /// [`ClusterError::DeadlineExceeded`]
    /// or [`ClusterError::Cancelled`] —
    /// carrying an [`InterruptReport`](crate::error::InterruptReport).
    /// The session stays usable either way.
    #[default]
    Fail,
    /// *Anytime* semantics: if a full k-clustering was already found when
    /// the interruption fired, return it as a normal result with
    /// [`SolveResult::interrupt`](crate::SolveResult::interrupt) set (the
    /// guessing schedule just stopped refining early). With no full
    /// clustering yet, the typed error is returned as under
    /// [`DegradeMode::Fail`].
    BestEffort,
}

/// Shared configuration for [`crate::mcp()`](crate::mcp::mcp) and [`crate::acp()`](crate::acp::acp).
///
/// Defaults follow the paper's experimental setup (§5): `γ = 0.1`,
/// `p_L = 10⁻⁴`, `α = 1`, progressive sampling starting at 50 samples,
/// accelerated guessing with binary-search refinement.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Guess-schedule parameter `γ > 0` (time/quality trade-off).
    pub gamma: f64,
    /// Probability floor `p_L ∈ (0, 1]`: guesses never go below it.
    pub p_l: f64,
    /// Relative-error target ε for Monte-Carlo estimates; thresholds are
    /// relaxed to `(1 − ε/2)·q` per §4.1.
    pub epsilon: f64,
    /// Candidate-set size `α ≥ 1` in `min-partial` (`usize::MAX` = all
    /// uncovered nodes). Higher values lower the variance of the returned
    /// quality at higher cost (§5).
    pub alpha: usize,
    /// Master RNG seed; fixing it makes every run bit-reproducible.
    pub seed: u64,
    /// Worker threads for sampling (0 = all available cores).
    pub threads: usize,
    /// Monte-Carlo sample-size schedule.
    pub schedule: SampleSchedule,
    /// Threshold guessing strategy.
    pub guess: GuessStrategy,
    /// ACP invocation flavor.
    pub acp_invocation: AcpInvocation,
    /// Monte-Carlo backend: scalar per-world pools, the pure-mask
    /// bit-parallel block pool (64 worlds per machine word), or the
    /// default **adaptive** backend (bit-parallel plus lazy per-block
    /// component-label finalization). Backends are count-identical for a
    /// fixed seed, so this knob trades nothing but time; it is threaded
    /// through `mcp`/`acp` (and their depth variants) into every
    /// `min-partial` probability estimate.
    pub engine: EngineKind,
    /// Mask-block width of the bit-parallel backends: how many worlds one
    /// block packs (64, 256, or 512 — see
    /// [`ugraph_sampling::BlockWidth`]). Counts are bit-identical at every
    /// width; wider blocks answer more worlds per traversal at
    /// proportionally larger per-block mask memory. Ignored by the scalar
    /// backend.
    pub block_width: BlockWidth,
    /// Per-center row cache in the Monte-Carlo oracles (default on):
    /// integer count rows are kept across the guessing schedule and topped
    /// up incrementally when the pool grows, instead of re-sweeping all
    /// sampled worlds per candidate. Results are bit-identical either way;
    /// disabling trades time for the cache's memory (one integer row per
    /// distinct center queried).
    pub row_cache: bool,
    /// Session-level **shared pool** across the MCP and ACP oracle
    /// families (default off). With it on, a `UgraphSession` keeps a
    /// single grow-only pool + row cache per *depth shape* instead of one
    /// per (objective, depth shape), so interleaved MCP/ACP workloads
    /// dedupe their sampled worlds and share cached rows.
    ///
    /// **Determinism trade-off**: results stay fully deterministic for a
    /// fixed seed (and identical across backends and thread counts), but
    /// they are **not** bit-identical to the one-shot entry points — the
    /// shared pool draws from its own seed stream, whereas `mcp`/`acp`
    /// decorrelate each family's samples. One-shot calls ignore the knob
    /// (a single-request session has nothing to share).
    pub shared_pool: bool,
    /// Byte ceiling for sample storage and cached probability rows
    /// (default `None` = unbounded). With a limit set, every oracle's
    /// shard-granular pool charges a shared ledger; under pressure,
    /// least-recently-used shards are evicted and regenerated on demand
    /// from their per-index RNG streams. Results are **bit-identical**
    /// under any budget — the knob trades time (regeneration sweeps) for
    /// a hard memory bound.
    pub memory_budget: Option<usize>,
    /// Session-level wall-clock bound applied to **every** solve (default
    /// `None` = unbounded). The solve stops cooperatively at the next
    /// shard/block checkpoint after expiry; composes with a per-request
    /// [`ClusterRequest::with_deadline`](crate::ClusterRequest::with_deadline)
    /// (tighter wins). Cancellation latency is bounded by one block of
    /// work; an uninterrupted run is bit-identical with or without the
    /// bound.
    pub timeout: Option<Duration>,
    /// Session-level cancellation token checked by every solve (default
    /// `None`). Cancel any clone of it — e.g. from a signal handler or a
    /// server thread — and the running solve stops at its next
    /// checkpoint. Composes with per-request tokens (all are honored).
    pub cancel_token: Option<CancelToken>,
    /// What an interrupted solve returns (default
    /// [`DegradeMode::Fail`]: a typed error).
    pub degrade: DegradeMode,
}

impl PartialEq for ClusterConfig {
    /// Cancellation tokens compare by clone identity
    /// ([`CancelToken::same_token`]); everything else structurally.
    fn eq(&self, other: &Self) -> bool {
        self.gamma == other.gamma
            && self.p_l == other.p_l
            && self.epsilon == other.epsilon
            && self.alpha == other.alpha
            && self.seed == other.seed
            && self.threads == other.threads
            && self.schedule == other.schedule
            && self.guess == other.guess
            && self.acp_invocation == other.acp_invocation
            && self.engine == other.engine
            && self.block_width == other.block_width
            && self.row_cache == other.row_cache
            && self.shared_pool == other.shared_pool
            && self.memory_budget == other.memory_budget
            && self.timeout == other.timeout
            && self.degrade == other.degrade
            && match (&self.cancel_token, &other.cancel_token) {
                (None, None) => true,
                (Some(a), Some(b)) => a.same_token(b),
                _ => false,
            }
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            gamma: 0.1,
            p_l: 1e-4,
            epsilon: 0.1,
            alpha: 1,
            seed: 0,
            threads: 0,
            schedule: SampleSchedule::practical(),
            guess: GuessStrategy::default(),
            acp_invocation: AcpInvocation::default(),
            engine: EngineKind::default(),
            block_width: BlockWidth::default(),
            row_cache: true,
            shared_pool: false,
            memory_budget: None,
            timeout: None,
            cancel_token: None,
            degrade: DegradeMode::default(),
        }
    }
}

impl ClusterConfig {
    /// Validates parameter ranges, returning a descriptive error.
    pub fn validate(&self) -> Result<(), ClusterError> {
        if !(self.gamma > 0.0 && self.gamma.is_finite()) {
            return Err(ClusterError::InvalidConfig {
                message: format!("gamma must be a positive finite number, got {}", self.gamma),
            });
        }
        if !(self.p_l > 0.0 && self.p_l <= 1.0) {
            return Err(ClusterError::InvalidConfig {
                message: format!("p_l must be in (0, 1], got {}", self.p_l),
            });
        }
        if !(self.epsilon >= 0.0 && self.epsilon < 2.0) {
            return Err(ClusterError::InvalidConfig {
                message: format!("epsilon must be in [0, 2), got {}", self.epsilon),
            });
        }
        if self.alpha == 0 {
            return Err(ClusterError::InvalidConfig {
                message: "alpha must be at least 1".to_string(),
            });
        }
        if self.memory_budget == Some(0) {
            return Err(ClusterError::InvalidConfig {
                message: "memory_budget must be positive (use None for unbounded)".to_string(),
            });
        }
        Ok(())
    }

    /// Builder-style setter for `gamma`.
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }

    /// Builder-style setter for `p_l`.
    pub fn with_p_l(mut self, p_l: f64) -> Self {
        self.p_l = p_l;
        self
    }

    /// Builder-style setter for `epsilon`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Builder-style setter for `alpha`.
    pub fn with_alpha(mut self, alpha: usize) -> Self {
        self.alpha = alpha;
        self
    }

    /// Builder-style setter for `seed`.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style setter for `threads`.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder-style setter for the sample schedule.
    pub fn with_schedule(mut self, schedule: SampleSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Builder-style setter for the guess strategy.
    pub fn with_guess(mut self, guess: GuessStrategy) -> Self {
        self.guess = guess;
        self
    }

    /// Builder-style setter for the ACP invocation flavor.
    pub fn with_acp_invocation(mut self, inv: AcpInvocation) -> Self {
        self.acp_invocation = inv;
        self
    }

    /// Builder-style setter for the Monte-Carlo backend.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Builder-style setter for the bit-parallel mask-block width.
    pub fn with_block_width(mut self, width: BlockWidth) -> Self {
        self.block_width = width;
        self
    }

    /// Builder-style setter for the oracle row cache.
    pub fn with_row_cache(mut self, row_cache: bool) -> Self {
        self.row_cache = row_cache;
        self
    }

    /// Builder-style setter for the session-level shared pool (see
    /// [`ClusterConfig::shared_pool`] for the determinism trade-off).
    pub fn with_shared_pool(mut self, shared_pool: bool) -> Self {
        self.shared_pool = shared_pool;
        self
    }

    /// Builder-style setter for the memory budget in bytes (see
    /// [`ClusterConfig::memory_budget`]).
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Builder-style setter for the session-level wall-clock bound (see
    /// [`ClusterConfig::timeout`]). Applied per solve, not to the session
    /// lifetime; tightens (never loosens) an existing value.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(self.timeout.map_or(timeout, |t| t.min(timeout)));
        self
    }

    /// Builder-style setter for the session-level cancellation token (see
    /// [`ClusterConfig::cancel_token`]).
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel_token = Some(token);
        self
    }

    /// Builder-style setter for the degrade mode (see [`DegradeMode`]).
    pub fn with_degrade(mut self, degrade: DegradeMode) -> Self {
        self.degrade = degrade;
        self
    }

    /// The per-solve [`RunBudget`](ugraph_sampling::RunBudget) of this
    /// configuration combined with `request`-level bounds: the tighter
    /// deadline wins, every cancellation token is attached.
    pub(crate) fn run_budget(&self, request: &crate::ClusterRequest) -> ugraph_sampling::RunBudget {
        let mut budget = ugraph_sampling::RunBudget::unlimited();
        if let Some(t) = self.timeout {
            budget = budget.with_timeout(t);
        }
        if let Some(tok) = &self.cancel_token {
            budget = budget.with_token(tok.clone());
        }
        if let Some(t) = request.deadline() {
            budget = budget.with_timeout(t);
        }
        if let Some(tok) = request.cancel_token() {
            budget = budget.with_token(tok.clone());
        }
        budget
    }

    /// The relaxed threshold actually compared against estimates:
    /// `(1 − ε/2) · q` (§4.1). With ε = 0 (exact oracles) this is `q`.
    #[inline]
    pub fn relaxed(&self, q: f64, oracle_epsilon: f64) -> f64 {
        (1.0 - oracle_epsilon / 2.0) * q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ClusterConfig::default();
        assert_eq!(c.gamma, 0.1);
        assert_eq!(c.p_l, 1e-4);
        assert_eq!(c.alpha, 1);
        assert_eq!(c.guess, GuessStrategy::Accelerated);
        assert_eq!(c.acp_invocation, AcpInvocation::Practical);
        assert_eq!(c.engine, EngineKind::Adaptive);
        assert!(!c.shared_pool);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(ClusterConfig::default().with_gamma(0.0).validate().is_err());
        assert!(ClusterConfig::default().with_gamma(f64::NAN).validate().is_err());
        assert!(ClusterConfig::default().with_p_l(0.0).validate().is_err());
        assert!(ClusterConfig::default().with_p_l(1.5).validate().is_err());
        assert!(ClusterConfig::default().with_epsilon(-0.1).validate().is_err());
        assert!(ClusterConfig::default().with_epsilon(2.0).validate().is_err());
        assert!(ClusterConfig::default().with_alpha(0).validate().is_err());
        assert!(ClusterConfig::default().with_memory_budget(0).validate().is_err());
        assert!(ClusterConfig::default().with_memory_budget(1 << 30).validate().is_ok());
    }

    #[test]
    fn builder_chain() {
        let c = ClusterConfig::default()
            .with_gamma(0.2)
            .with_seed(7)
            .with_alpha(3)
            .with_threads(2)
            .with_guess(GuessStrategy::Geometric)
            .with_engine(EngineKind::BitParallel);
        assert_eq!(c.gamma, 0.2);
        assert_eq!(c.seed, 7);
        assert_eq!(c.alpha, 3);
        assert_eq!(c.threads, 2);
        assert_eq!(c.guess, GuessStrategy::Geometric);
        assert_eq!(c.engine, EngineKind::BitParallel);
    }

    #[test]
    fn relaxed_threshold() {
        let c = ClusterConfig::default();
        assert!((c.relaxed(0.8, 0.1) - 0.76).abs() < 1e-12);
        assert_eq!(c.relaxed(0.8, 0.0), 0.8);
    }
}
