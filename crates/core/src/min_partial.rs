//! Algorithm 1 (`min-partial`) and its depth-limited form, Algorithm 4
//! (`min-partial-d`).
//!
//! Given a threshold `q`, `min-partial` greedily selects up to `k` centers
//! and covers every node whose (estimated) connection probability to some
//! selected center is at least `q`; nodes it cannot cover remain outliers.
//! The center picked in each iteration is, among a set `T` of `α` candidate
//! uncovered nodes, the one whose *selection disk* `M_v = {u ∈ V' :
//! Pr(u ~ v) ≥ q̄}` is largest — a generalization of the
//! Charikar-Khuller-Mount-Narasimhan outlier k-center strategy to
//! probability space (paper §3.1).
//!
//! The depth-limited variant differs only in which oracle backs the
//! probabilities: a [`DepthMcOracle`](ugraph_sampling::DepthMcOracle)
//! evaluates the selection disks at depth `d'` and the cover disks at
//! depth `d` (Algorithm 4 lines 5 and 8), so this module is depth-agnostic.
//!
//! It is also **backend-agnostic**: every probability row consumed here
//! comes through the [`Oracle`] trait, whose Monte-Carlo implementations
//! sit on the `WorldEngine` seam — the drivers thread
//! [`ClusterConfig::engine`](crate::ClusterConfig) (scalar vs.
//! bit-parallel) into the oracles they construct, and `min-partial` sees
//! identical estimates either way.

use rand::rngs::SmallRng;
use rand::Rng;

use ugraph_graph::NodeId;
use ugraph_sampling::{Oracle, SamplingError};

use crate::clustering::{Clustering, PartialClustering};

/// Sentinel used in the internal assignment representation.
const UNASSIGNED: u32 = u32::MAX;

/// Parameters of one `min-partial` invocation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MinPartialParams {
    /// Number of clusters `k ≥ 1`.
    pub k: usize,
    /// Cover threshold `q ∈ (0, 1]`: nodes with estimated probability
    /// `≥ (1 − ε/2)·q` to a selected center are covered (line 8).
    pub q: f64,
    /// Candidate-set size `α ≥ 1` (line 4); `usize::MAX` means "all
    /// uncovered nodes".
    pub alpha: usize,
    /// Selection threshold `q̄ ∈ [q, 1]` sizing the greedy disks (line 5).
    pub q_bar: f64,
    /// Monte-Carlo relaxation ε applied to both thresholds (§4.1); pass 0
    /// for exact oracles.
    pub epsilon: f64,
}

impl MinPartialParams {
    /// Convenience constructor with `q̄ = q` and no relaxation.
    pub fn simple(k: usize, q: f64) -> Self {
        MinPartialParams { k, q, alpha: 1, q_bar: q, epsilon: 0.0 }
    }
}

/// Candidate rows fetched per batched oracle call: large enough to amortize
/// a pool sweep over many rows, small enough to bound the row buffers at
/// `2 · CANDIDATE_BATCH · n` floats even when `α = n`.
const CANDIDATE_BATCH: usize = 16;

/// Reusable buffers for repeated [`min_partial`] invocations.
///
/// One `min-partial` run needs seven `n`-sized working vectors (coverage
/// bookkeeping and probability rows); the MCP/ACP drivers invoke
/// `min-partial` once per threshold guess over the same graph, so they own
/// one workspace and pass it to [`min_partial_with`] — repeated guesses
/// reset the buffers in place instead of re-allocating them.
#[derive(Clone, Debug, Default)]
pub struct MinPartialWorkspace {
    is_center: Vec<bool>,
    /// V' as a compact vector of live node ids.
    uncovered: Vec<u32>,
    best_prob: Vec<f64>,
    best_center: Vec<u32>,
    covered: Vec<bool>,
    /// Batched selection-radius rows, candidate-major (empty while the
    /// oracle's rows are identical).
    sel_rows: Vec<f64>,
    /// Batched cover-radius rows, candidate-major.
    cov_rows: Vec<f64>,
    /// Cover row of the best candidate found so far this iteration.
    best_cov: Vec<f64>,
    /// Candidate ids of the current batch.
    batch: Vec<NodeId>,
}

impl MinPartialWorkspace {
    /// Creates a workspace for graphs of `n` nodes (buffers are sized
    /// lazily, so any `n` works; this just pre-sizes).
    pub fn new(n: usize) -> Self {
        let mut ws = MinPartialWorkspace::default();
        ws.reset(n);
        ws
    }

    /// Re-initializes all bookkeeping for a fresh invocation.
    fn reset(&mut self, n: usize) {
        self.is_center.clear();
        self.is_center.resize(n, false);
        self.uncovered.clear();
        self.uncovered.extend(0..n as u32);
        self.best_prob.clear();
        self.best_prob.resize(n, 0.0);
        self.best_center.clear();
        self.best_center.resize(n, UNASSIGNED);
        self.covered.clear();
        self.covered.resize(n, false);
        self.best_cov.clear();
        self.best_cov.resize(n, 0.0);
    }
}

/// Runs `min-partial(G, k, q, α, q̄)` against `oracle`.
///
/// The oracle must already be [`prepare`](Oracle::prepare)d for
/// probabilities `≥ q` (the drivers do this). `rng` supplies the "arbitrary"
/// choices of the pseudocode (candidate sets), making runs reproducible
/// under a fixed seed.
///
/// Returns the partial clustering, per-node assignment probabilities, and
/// the best-center map used to complete partial clusterings.
///
/// This convenience wrapper allocates a fresh [`MinPartialWorkspace`];
/// repeated callers (the MCP/ACP guessing schedules) use
/// [`min_partial_with`] to reuse one.
///
/// # Errors
/// Propagates oracle failures (cooperative interruptions, injected
/// faults). The workspace and oracle caches stay consistent: nothing
/// partial is committed, and re-running the invocation completes
/// bit-identically.
///
/// # Panics
/// Panics if `params.k == 0` or `params.alpha == 0`.
pub fn min_partial<O: Oracle + ?Sized>(
    oracle: &mut O,
    params: &MinPartialParams,
    rng: &mut SmallRng,
) -> Result<PartialClustering, SamplingError> {
    min_partial_with(oracle, params, rng, &mut MinPartialWorkspace::new(oracle.num_nodes()))
}

/// [`min_partial`] with caller-owned working buffers.
///
/// Candidate probability rows are fetched through
/// [`Oracle::center_probs_batch`] in `CANDIDATE_BATCH`-sized groups, so the
/// Monte-Carlo oracles answer a greedy step with amortized pool sweeps and
/// cached rows instead of one full sweep per candidate; when
/// [`Oracle::identical_rows`] holds, only cover rows are materialized. The
/// returned clustering is **bit-identical** to per-candidate
/// `center_probs` calls: candidates are evaluated in the same order, ties
/// break the same way, and the rng is consumed identically.
///
/// # Errors
/// See [`min_partial`].
///
/// # Panics
/// Panics if `params.k == 0` or `params.alpha == 0`.
pub fn min_partial_with<O: Oracle + ?Sized>(
    oracle: &mut O,
    params: &MinPartialParams,
    rng: &mut SmallRng,
    ws: &mut MinPartialWorkspace,
) -> Result<PartialClustering, SamplingError> {
    assert!(params.k >= 1, "k must be at least 1");
    assert!(params.alpha >= 1, "alpha must be at least 1");
    let n = oracle.num_nodes();
    let relax = 1.0 - params.epsilon / 2.0;
    let select_thresh = relax * params.q_bar;
    let cover_thresh = relax * params.q;
    let identical_rows = oracle.identical_rows();

    let mut centers: Vec<NodeId> = Vec::with_capacity(params.k);
    ws.reset(n);

    for _iter in 0..params.k {
        if ws.uncovered.is_empty() {
            break;
        }
        // Line 4: arbitrary T ⊆ V' with |T| = min(α, |V'|), drawn by a
        // partial Fisher-Yates shuffle so candidates are distinct.
        let t_size = params.alpha.min(ws.uncovered.len());
        for i in 0..t_size {
            let j = i + rng.gen_range(0..ws.uncovered.len() - i);
            ws.uncovered.swap(i, j);
        }

        // Lines 5-6: greedy disk maximization over the candidates, rows
        // fetched in batches.
        let mut best: Option<(usize, u32)> = None; // (|Mv|, candidate node)
        let mut start = 0usize;
        while start < t_size {
            let len = (t_size - start).min(CANDIDATE_BATCH);
            ws.batch.clear();
            ws.batch.extend(ws.uncovered[start..start + len].iter().map(|&u| NodeId(u)));
            ws.cov_rows.resize(len * n, 0.0);
            if identical_rows {
                oracle.center_probs_batch(&ws.batch, &mut [], &mut ws.cov_rows)?;
            } else {
                ws.sel_rows.resize(len * n, 0.0);
                oracle.center_probs_batch(&ws.batch, &mut ws.sel_rows, &mut ws.cov_rows)?;
            }
            for (bj, &cand) in ws.uncovered[start..start + len].iter().enumerate() {
                let cov_row = &ws.cov_rows[bj * n..(bj + 1) * n];
                let sel_row =
                    if identical_rows { cov_row } else { &ws.sel_rows[bj * n..(bj + 1) * n] };
                let disk =
                    ws.uncovered.iter().filter(|&&u| sel_row[u as usize] >= select_thresh).count();
                let better = match best {
                    None => true,
                    // Tie-break toward the smaller node id for determinism.
                    Some((bd, bc)) => disk > bd || (disk == bd && cand < bc),
                };
                if better {
                    best = Some((disk, cand));
                    ws.best_cov.copy_from_slice(cov_row);
                }
            }
            start += len;
        }
        let (_, chosen) =
            best.unwrap_or_else(|| unreachable!("candidate set cannot be empty here"));
        let ci = centers.len() as u32;
        centers.push(NodeId(chosen));
        ws.is_center[chosen as usize] = true;
        ws.covered[chosen as usize] = true;

        // Line 12 bookkeeping: c(u, S) = argmax_c p̃(c, u). Centers stay
        // pinned to themselves.
        for u in 0..n {
            if ws.is_center[u] {
                continue;
            }
            if ws.best_cov[u] > ws.best_prob[u] {
                ws.best_prob[u] = ws.best_cov[u];
                ws.best_center[u] = ci;
            }
        }
        ws.best_prob[chosen as usize] = 1.0;
        ws.best_center[chosen as usize] = ci;

        // Line 8: remove from V' everything now covered by the new center.
        let (best_cov, covered) = (&ws.best_cov, &mut ws.covered);
        ws.uncovered.retain(|&u| {
            if best_cov[u as usize] >= cover_thresh || u == chosen {
                covered[u as usize] = true;
                false
            } else {
                true
            }
        });
    }

    // Lines 10-11: top up with arbitrary non-center nodes when fewer than k
    // centers were selected (V' ran out early). Their probability rows are
    // still computed so the final assignment honors c(u, S) over all of S.
    if centers.len() < params.k {
        ws.sel_rows.resize(n, 0.0);
        ws.cov_rows.resize(n, 0.0);
        for u in 0..n as u32 {
            if centers.len() == params.k {
                break;
            }
            if ws.is_center[u as usize] {
                continue;
            }
            let ci = centers.len() as u32;
            centers.push(NodeId(u));
            ws.is_center[u as usize] = true;
            ws.covered[u as usize] = true;
            oracle.center_probs(NodeId(u), &mut ws.sel_rows, &mut ws.cov_rows)?;
            for w in 0..n {
                if ws.is_center[w] {
                    continue;
                }
                if ws.cov_rows[w] > ws.best_prob[w] {
                    ws.best_prob[w] = ws.cov_rows[w];
                    ws.best_center[w] = ci;
                }
            }
            ws.best_prob[u as usize] = 1.0;
            ws.best_center[u as usize] = ci;
        }
    }

    // Materialize: covered nodes take their best center; outliers stay out.
    let mut assignment = vec![UNASSIGNED; n];
    let mut assign_probs = vec![0.0f64; n];
    for u in 0..n {
        if ws.covered[u] && ws.best_center[u] != UNASSIGNED {
            assignment[u] = ws.best_center[u];
            assign_probs[u] = ws.best_prob[u];
        }
    }
    let clustering = Clustering::from_raw(centers, assignment);
    let best_center_opt: Vec<Option<u32>> =
        ws.best_center.iter().map(|&c| (c != UNASSIGNED).then_some(c)).collect();
    Ok(PartialClustering {
        clustering,
        assign_probs,
        best_center: best_center_opt,
        best_prob: ws.best_prob.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use ugraph_graph::{GraphBuilder, UncertainGraph};
    use ugraph_sampling::{ExactOracle, ExactOracleAdapter};

    fn exact_oracle(g: &UncertainGraph) -> ExactOracleAdapter {
        ExactOracleAdapter::new(ExactOracle::new(g).unwrap())
    }

    /// Two cliques of 3, p = 0.9 inside, bridged by p = 0.01.
    fn two_communities() -> UncertainGraph {
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(u, v, 0.9).unwrap();
        }
        b.add_edge(2, 3, 0.01).unwrap();

        b.build().unwrap()
    }

    #[test]
    fn covers_everything_at_low_threshold() {
        let g = two_communities();
        let mut oracle = exact_oracle(&g);
        let mut rng = SmallRng::seed_from_u64(1);
        let pc = min_partial(&mut oracle, &MinPartialParams::simple(2, 0.5), &mut rng).unwrap();
        assert!(pc.clustering.is_full());
        assert_eq!(pc.clustering.num_clusters(), 2);
        // Each triangle forms one cluster.
        let c0 = pc.clustering.cluster_of(NodeId(0));
        assert_eq!(pc.clustering.cluster_of(NodeId(1)), c0);
        assert_eq!(pc.clustering.cluster_of(NodeId(2)), c0);
        let c3 = pc.clustering.cluster_of(NodeId(3));
        assert_ne!(c0, c3);
        assert_eq!(pc.clustering.cluster_of(NodeId(5)), c3);
    }

    #[test]
    fn covered_nodes_meet_threshold() {
        let g = two_communities();
        let mut oracle = exact_oracle(&g);
        let mut rng = SmallRng::seed_from_u64(7);
        let q = 0.7;
        let pc = min_partial(&mut oracle, &MinPartialParams::simple(2, q), &mut rng).unwrap();
        for u in 0..6u32 {
            if pc.clustering.cluster_of(NodeId(u)).is_some() {
                assert!(
                    pc.assign_probs[u as usize] >= q - 1e-12,
                    "covered node {u} has prob {} < q = {q}",
                    pc.assign_probs[u as usize]
                );
            }
        }
    }

    #[test]
    fn k1_on_high_threshold_leaves_outliers() {
        let g = two_communities();
        let mut oracle = exact_oracle(&g);
        let mut rng = SmallRng::seed_from_u64(3);
        let pc = min_partial(&mut oracle, &MinPartialParams::simple(1, 0.5), &mut rng).unwrap();
        // One center can only cover its own triangle (bridge prob ~0.01).
        assert_eq!(pc.clustering.covered_count(), 3);
        assert_eq!(pc.clustering.outliers().len(), 3);
        // phi counts only covered nodes.
        assert!(pc.phi() > 0.0 && pc.phi() < 1.0);
    }

    #[test]
    fn centers_pin_to_their_own_cluster() {
        let g = two_communities();
        let mut oracle = exact_oracle(&g);
        let mut rng = SmallRng::seed_from_u64(11);
        let pc = min_partial(&mut oracle, &MinPartialParams::simple(3, 0.3), &mut rng).unwrap();
        for (i, &c) in pc.clustering.centers().iter().enumerate() {
            assert_eq!(pc.clustering.cluster_of(c), Some(i));
            assert_eq!(pc.assign_probs[c.index()], 1.0);
        }
    }

    #[test]
    fn fills_up_to_k_centers_when_graph_is_small() {
        // Fully reliable triangle: all nodes covered by the first center,
        // so centers 2 and 3 are arbitrary fill-ins.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 1.0).unwrap();
        b.add_edge(0, 2, 1.0).unwrap();
        let g = b.build().unwrap();
        let mut oracle = exact_oracle(&g);
        let mut rng = SmallRng::seed_from_u64(5);
        let pc = min_partial(&mut oracle, &MinPartialParams::simple(2, 0.9), &mut rng).unwrap();
        assert_eq!(pc.clustering.num_clusters(), 2);
        assert!(pc.clustering.is_full());
        assert!(pc.clustering.validate().is_ok());
    }

    #[test]
    fn alpha_all_considers_every_uncovered_candidate() {
        let g = two_communities();
        let mut oracle = exact_oracle(&g);
        let mut rng = SmallRng::seed_from_u64(2);
        let params = MinPartialParams { k: 2, q: 0.5, alpha: usize::MAX, q_bar: 0.5, epsilon: 0.0 };
        let pc = min_partial(&mut oracle, &params, &mut rng).unwrap();
        assert!(pc.clustering.is_full());
        // With alpha = all and exact probabilities the result is
        // rng-independent: any seed gives the same deterministic outcome
        // because ties break on node id.
        let mut oracle2 = exact_oracle(&g);
        let mut rng2 = SmallRng::seed_from_u64(999);
        let pc2 = min_partial(&mut oracle2, &params, &mut rng2).unwrap();
        assert_eq!(pc.clustering, pc2.clustering);
    }

    #[test]
    fn q_bar_above_q_shrinks_selection_disks_but_not_cover() {
        let g = two_communities();
        let mut oracle = exact_oracle(&g);
        let mut rng = SmallRng::seed_from_u64(4);
        let params = MinPartialParams { k: 2, q: 0.1, alpha: usize::MAX, q_bar: 0.9, epsilon: 0.0 };
        let pc = min_partial(&mut oracle, &params, &mut rng).unwrap();
        // Cover threshold is low, so everything still gets covered.
        assert!(pc.clustering.is_full());
    }

    #[test]
    fn reproducible_under_seed() {
        let g = two_communities();
        let run = |seed: u64| {
            let mut oracle = exact_oracle(&g);
            let mut rng = SmallRng::seed_from_u64(seed);
            min_partial(&mut oracle, &MinPartialParams::simple(2, 0.5), &mut rng)
                .unwrap()
                .clustering
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_panics() {
        let g = two_communities();
        let mut oracle = exact_oracle(&g);
        let mut rng = SmallRng::seed_from_u64(0);
        let params = MinPartialParams { k: 0, q: 0.5, alpha: 1, q_bar: 0.5, epsilon: 0.0 };
        let _ = min_partial(&mut oracle, &params, &mut rng).unwrap();
    }

    #[test]
    fn epsilon_relaxes_thresholds() {
        // Path 0 -0.8- 1: at q = 0.8 with ε = 0.5 the relaxed threshold is
        // 0.6, so node 1 is covered by center 0 even though 0.8 < q/(1-ε/2).
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.7).unwrap();
        let g = b.build().unwrap();
        let mut oracle = exact_oracle(&g);
        let mut rng = SmallRng::seed_from_u64(0);
        let strict = MinPartialParams { k: 1, q: 0.8, alpha: 1, q_bar: 0.8, epsilon: 0.0 };
        let pc = min_partial(&mut oracle, &strict, &mut rng).unwrap();
        assert_eq!(pc.clustering.covered_count(), 1);
        let relaxed = MinPartialParams { k: 1, q: 0.8, alpha: 1, q_bar: 0.8, epsilon: 0.5 };
        let pc = min_partial(&mut oracle, &relaxed, &mut rng).unwrap();
        assert_eq!(pc.clustering.covered_count(), 2);
    }
}
