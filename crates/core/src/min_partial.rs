//! Algorithm 1 (`min-partial`) and its depth-limited form, Algorithm 4
//! (`min-partial-d`).
//!
//! Given a threshold `q`, `min-partial` greedily selects up to `k` centers
//! and covers every node whose (estimated) connection probability to some
//! selected center is at least `q`; nodes it cannot cover remain outliers.
//! The center picked in each iteration is, among a set `T` of `α` candidate
//! uncovered nodes, the one whose *selection disk* `M_v = {u ∈ V' :
//! Pr(u ~ v) ≥ q̄}` is largest — a generalization of the
//! Charikar-Khuller-Mount-Narasimhan outlier k-center strategy to
//! probability space (paper §3.1).
//!
//! The depth-limited variant differs only in which oracle backs the
//! probabilities: a [`DepthMcOracle`](ugraph_sampling::DepthMcOracle)
//! evaluates the selection disks at depth `d'` and the cover disks at
//! depth `d` (Algorithm 4 lines 5 and 8), so this module is depth-agnostic.
//!
//! It is also **backend-agnostic**: every probability row consumed here
//! comes through the [`Oracle`] trait, whose Monte-Carlo implementations
//! sit on the `WorldEngine` seam — the drivers thread
//! [`ClusterConfig::engine`](crate::ClusterConfig) (scalar vs.
//! bit-parallel) into the oracles they construct, and `min-partial` sees
//! identical estimates either way.

use rand::rngs::SmallRng;
use rand::Rng;

use ugraph_graph::NodeId;
use ugraph_sampling::Oracle;

use crate::clustering::{Clustering, PartialClustering};

/// Sentinel used in the internal assignment representation.
const UNASSIGNED: u32 = u32::MAX;

/// Parameters of one `min-partial` invocation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MinPartialParams {
    /// Number of clusters `k ≥ 1`.
    pub k: usize,
    /// Cover threshold `q ∈ (0, 1]`: nodes with estimated probability
    /// `≥ (1 − ε/2)·q` to a selected center are covered (line 8).
    pub q: f64,
    /// Candidate-set size `α ≥ 1` (line 4); `usize::MAX` means "all
    /// uncovered nodes".
    pub alpha: usize,
    /// Selection threshold `q̄ ∈ [q, 1]` sizing the greedy disks (line 5).
    pub q_bar: f64,
    /// Monte-Carlo relaxation ε applied to both thresholds (§4.1); pass 0
    /// for exact oracles.
    pub epsilon: f64,
}

impl MinPartialParams {
    /// Convenience constructor with `q̄ = q` and no relaxation.
    pub fn simple(k: usize, q: f64) -> Self {
        MinPartialParams { k, q, alpha: 1, q_bar: q, epsilon: 0.0 }
    }
}

/// Runs `min-partial(G, k, q, α, q̄)` against `oracle`.
///
/// The oracle must already be [`prepare`](Oracle::prepare)d for
/// probabilities `≥ q` (the drivers do this). `rng` supplies the "arbitrary"
/// choices of the pseudocode (candidate sets), making runs reproducible
/// under a fixed seed.
///
/// Returns the partial clustering, per-node assignment probabilities, and
/// the best-center map used to complete partial clusterings.
///
/// # Panics
/// Panics if `params.k == 0` or `params.alpha == 0`.
pub fn min_partial<O: Oracle + ?Sized>(
    oracle: &mut O,
    params: &MinPartialParams,
    rng: &mut SmallRng,
) -> PartialClustering {
    assert!(params.k >= 1, "k must be at least 1");
    assert!(params.alpha >= 1, "alpha must be at least 1");
    let n = oracle.num_nodes();
    let relax = 1.0 - params.epsilon / 2.0;
    let select_thresh = relax * params.q_bar;
    let cover_thresh = relax * params.q;

    let mut centers: Vec<NodeId> = Vec::with_capacity(params.k);
    let mut is_center = vec![false; n];
    // V' as a compact vector; `uncovered[i]` for i < live_len are alive.
    let mut uncovered: Vec<u32> = (0..n as u32).collect();
    // Assignment bookkeeping.
    let mut best_prob = vec![0.0f64; n];
    let mut best_center: Vec<u32> = vec![UNASSIGNED; n];
    let mut covered = vec![false; n];

    // Reusable probability buffers.
    let mut sel = vec![0.0f64; n];
    let mut cov = vec![0.0f64; n];
    let mut best_sel = vec![0.0f64; n];
    let mut best_cov = vec![0.0f64; n];

    for _iter in 0..params.k {
        if uncovered.is_empty() {
            break;
        }
        // Line 4: arbitrary T ⊆ V' with |T| = min(α, |V'|), drawn by a
        // partial Fisher-Yates shuffle so candidates are distinct.
        let t_size = params.alpha.min(uncovered.len());
        for i in 0..t_size {
            let j = i + rng.gen_range(0..uncovered.len() - i);
            uncovered.swap(i, j);
        }

        // Lines 5-6: greedy disk maximization over the candidates.
        let mut best: Option<(usize, u32)> = None; // (|Mv|, candidate node)
        for &cand in &uncovered[..t_size] {
            let v = NodeId(cand);
            oracle.center_probs(v, &mut sel, &mut cov);
            let disk = uncovered.iter().filter(|&&u| sel[u as usize] >= select_thresh).count();
            let better = match best {
                None => true,
                // Tie-break toward the smaller node id for determinism.
                Some((bd, bc)) => disk > bd || (disk == bd && cand < bc),
            };
            if better {
                best = Some((disk, cand));
                std::mem::swap(&mut sel, &mut best_sel);
                std::mem::swap(&mut cov, &mut best_cov);
            }
        }
        let (_, chosen) = best.expect("candidate set cannot be empty here");
        let ci = centers.len() as u32;
        centers.push(NodeId(chosen));
        is_center[chosen as usize] = true;
        covered[chosen as usize] = true;

        // Line 12 bookkeeping: c(u, S) = argmax_c p̃(c, u). Centers stay
        // pinned to themselves.
        for u in 0..n {
            if is_center[u] {
                continue;
            }
            if best_cov[u] > best_prob[u] {
                best_prob[u] = best_cov[u];
                best_center[u] = ci;
            }
        }
        best_prob[chosen as usize] = 1.0;
        best_center[chosen as usize] = ci;

        // Line 8: remove from V' everything now covered by the new center.
        uncovered.retain(|&u| {
            if best_cov[u as usize] >= cover_thresh || u == chosen {
                covered[u as usize] = true;
                false
            } else {
                true
            }
        });
    }

    // Lines 10-11: top up with arbitrary non-center nodes when fewer than k
    // centers were selected (V' ran out early). Their probability rows are
    // still computed so the final assignment honors c(u, S) over all of S.
    if centers.len() < params.k {
        for u in 0..n as u32 {
            if centers.len() == params.k {
                break;
            }
            if is_center[u as usize] {
                continue;
            }
            let ci = centers.len() as u32;
            centers.push(NodeId(u));
            is_center[u as usize] = true;
            covered[u as usize] = true;
            oracle.center_probs(NodeId(u), &mut sel, &mut cov);
            for w in 0..n {
                if is_center[w] {
                    continue;
                }
                if cov[w] > best_prob[w] {
                    best_prob[w] = cov[w];
                    best_center[w] = ci;
                }
            }
            best_prob[u as usize] = 1.0;
            best_center[u as usize] = ci;
        }
    }

    // Materialize: covered nodes take their best center; outliers stay out.
    let mut assignment = vec![UNASSIGNED; n];
    let mut assign_probs = vec![0.0f64; n];
    for u in 0..n {
        if covered[u] && best_center[u] != UNASSIGNED {
            assignment[u] = best_center[u];
            assign_probs[u] = best_prob[u];
        }
    }
    let clustering = Clustering::from_raw(centers, assignment);
    let best_center_opt: Vec<Option<u32>> =
        best_center.iter().map(|&c| (c != UNASSIGNED).then_some(c)).collect();
    PartialClustering { clustering, assign_probs, best_center: best_center_opt, best_prob }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use ugraph_graph::{GraphBuilder, UncertainGraph};
    use ugraph_sampling::{ExactOracle, ExactOracleAdapter};

    fn exact_oracle(g: &UncertainGraph) -> ExactOracleAdapter {
        ExactOracleAdapter::new(ExactOracle::new(g).unwrap())
    }

    /// Two cliques of 3, p = 0.9 inside, bridged by p = 0.01.
    fn two_communities() -> UncertainGraph {
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(u, v, 0.9).unwrap();
        }
        b.add_edge(2, 3, 0.01).unwrap();

        b.build().unwrap()
    }

    #[test]
    fn covers_everything_at_low_threshold() {
        let g = two_communities();
        let mut oracle = exact_oracle(&g);
        let mut rng = SmallRng::seed_from_u64(1);
        let pc = min_partial(&mut oracle, &MinPartialParams::simple(2, 0.5), &mut rng);
        assert!(pc.clustering.is_full());
        assert_eq!(pc.clustering.num_clusters(), 2);
        // Each triangle forms one cluster.
        let c0 = pc.clustering.cluster_of(NodeId(0));
        assert_eq!(pc.clustering.cluster_of(NodeId(1)), c0);
        assert_eq!(pc.clustering.cluster_of(NodeId(2)), c0);
        let c3 = pc.clustering.cluster_of(NodeId(3));
        assert_ne!(c0, c3);
        assert_eq!(pc.clustering.cluster_of(NodeId(5)), c3);
    }

    #[test]
    fn covered_nodes_meet_threshold() {
        let g = two_communities();
        let mut oracle = exact_oracle(&g);
        let mut rng = SmallRng::seed_from_u64(7);
        let q = 0.7;
        let pc = min_partial(&mut oracle, &MinPartialParams::simple(2, q), &mut rng);
        for u in 0..6u32 {
            if pc.clustering.cluster_of(NodeId(u)).is_some() {
                assert!(
                    pc.assign_probs[u as usize] >= q - 1e-12,
                    "covered node {u} has prob {} < q = {q}",
                    pc.assign_probs[u as usize]
                );
            }
        }
    }

    #[test]
    fn k1_on_high_threshold_leaves_outliers() {
        let g = two_communities();
        let mut oracle = exact_oracle(&g);
        let mut rng = SmallRng::seed_from_u64(3);
        let pc = min_partial(&mut oracle, &MinPartialParams::simple(1, 0.5), &mut rng);
        // One center can only cover its own triangle (bridge prob ~0.01).
        assert_eq!(pc.clustering.covered_count(), 3);
        assert_eq!(pc.clustering.outliers().len(), 3);
        // phi counts only covered nodes.
        assert!(pc.phi() > 0.0 && pc.phi() < 1.0);
    }

    #[test]
    fn centers_pin_to_their_own_cluster() {
        let g = two_communities();
        let mut oracle = exact_oracle(&g);
        let mut rng = SmallRng::seed_from_u64(11);
        let pc = min_partial(&mut oracle, &MinPartialParams::simple(3, 0.3), &mut rng);
        for (i, &c) in pc.clustering.centers().iter().enumerate() {
            assert_eq!(pc.clustering.cluster_of(c), Some(i));
            assert_eq!(pc.assign_probs[c.index()], 1.0);
        }
    }

    #[test]
    fn fills_up_to_k_centers_when_graph_is_small() {
        // Fully reliable triangle: all nodes covered by the first center,
        // so centers 2 and 3 are arbitrary fill-ins.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 1.0).unwrap();
        b.add_edge(0, 2, 1.0).unwrap();
        let g = b.build().unwrap();
        let mut oracle = exact_oracle(&g);
        let mut rng = SmallRng::seed_from_u64(5);
        let pc = min_partial(&mut oracle, &MinPartialParams::simple(2, 0.9), &mut rng);
        assert_eq!(pc.clustering.num_clusters(), 2);
        assert!(pc.clustering.is_full());
        assert!(pc.clustering.validate().is_ok());
    }

    #[test]
    fn alpha_all_considers_every_uncovered_candidate() {
        let g = two_communities();
        let mut oracle = exact_oracle(&g);
        let mut rng = SmallRng::seed_from_u64(2);
        let params = MinPartialParams { k: 2, q: 0.5, alpha: usize::MAX, q_bar: 0.5, epsilon: 0.0 };
        let pc = min_partial(&mut oracle, &params, &mut rng);
        assert!(pc.clustering.is_full());
        // With alpha = all and exact probabilities the result is
        // rng-independent: any seed gives the same deterministic outcome
        // because ties break on node id.
        let mut oracle2 = exact_oracle(&g);
        let mut rng2 = SmallRng::seed_from_u64(999);
        let pc2 = min_partial(&mut oracle2, &params, &mut rng2);
        assert_eq!(pc.clustering, pc2.clustering);
    }

    #[test]
    fn q_bar_above_q_shrinks_selection_disks_but_not_cover() {
        let g = two_communities();
        let mut oracle = exact_oracle(&g);
        let mut rng = SmallRng::seed_from_u64(4);
        let params = MinPartialParams { k: 2, q: 0.1, alpha: usize::MAX, q_bar: 0.9, epsilon: 0.0 };
        let pc = min_partial(&mut oracle, &params, &mut rng);
        // Cover threshold is low, so everything still gets covered.
        assert!(pc.clustering.is_full());
    }

    #[test]
    fn reproducible_under_seed() {
        let g = two_communities();
        let run = |seed: u64| {
            let mut oracle = exact_oracle(&g);
            let mut rng = SmallRng::seed_from_u64(seed);
            min_partial(&mut oracle, &MinPartialParams::simple(2, 0.5), &mut rng).clustering
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_panics() {
        let g = two_communities();
        let mut oracle = exact_oracle(&g);
        let mut rng = SmallRng::seed_from_u64(0);
        let params = MinPartialParams { k: 0, q: 0.5, alpha: 1, q_bar: 0.5, epsilon: 0.0 };
        let _ = min_partial(&mut oracle, &params, &mut rng);
    }

    #[test]
    fn epsilon_relaxes_thresholds() {
        // Path 0 -0.8- 1: at q = 0.8 with ε = 0.5 the relaxed threshold is
        // 0.6, so node 1 is covered by center 0 even though 0.8 < q/(1-ε/2).
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.7).unwrap();
        let g = b.build().unwrap();
        let mut oracle = exact_oracle(&g);
        let mut rng = SmallRng::seed_from_u64(0);
        let strict = MinPartialParams { k: 1, q: 0.8, alpha: 1, q_bar: 0.8, epsilon: 0.0 };
        let pc = min_partial(&mut oracle, &strict, &mut rng);
        assert_eq!(pc.clustering.covered_count(), 1);
        let relaxed = MinPartialParams { k: 1, q: 0.8, alpha: 1, q_bar: 0.8, epsilon: 0.5 };
        let pc = min_partial(&mut oracle, &relaxed, &mut rng);
        assert_eq!(pc.clustering.covered_count(), 2);
    }
}
