//! The MCP driver — Algorithm 2 with the paper's accelerated guessing
//! schedule and binary-search refinement (§5), plus Theorem 7's
//! Monte-Carlo integration.
//!
//! MCP repeatedly invokes [`min_partial`](crate::min_partial::min_partial) with a decreasing probability
//! threshold `q` until the returned partial clustering covers **all**
//! nodes; Lemma 2 guarantees this happens no later than
//! `q ≤ p²_opt-min(k)`, yielding the `p²_opt-min/(1+γ)` approximation of
//! Theorem 3. Crucially, no connection probability smaller than
//! `p²_opt-min/(1+γ)` is ever estimated — the feature that makes Monte-Carlo
//! integration affordable (§4.2).

use rand::rngs::SmallRng;
use rand::SeedableRng;

use ugraph_graph::UncertainGraph;
use ugraph_sampling::rng::mix_seed;
use ugraph_sampling::{EngineStats, Oracle, RowCacheStats};

use crate::clustering::{Clustering, PartialClustering};
use crate::config::{ClusterConfig, DegradeMode, GuessStrategy};
use crate::error::{interrupted, ClusterError, InterruptReport};
use crate::min_partial::{min_partial_with, MinPartialParams, MinPartialWorkspace};
use crate::request::{ClusterRequest, SolveResult};
use crate::session::UgraphSession;

/// Output of the MCP driver.
#[derive(Clone, Debug)]
pub struct McpResult {
    /// The full k-clustering.
    pub clustering: Clustering,
    /// Estimated connection probability of each node to its center.
    pub assign_probs: Vec<f64>,
    /// The algorithm's own estimate of `min-prob` (minimum of
    /// `assign_probs`); an unbiased evaluation should re-estimate with
    /// fresh samples (see `ugraph-metrics`).
    pub min_prob_estimate: f64,
    /// The threshold `q` that produced the returned clustering.
    pub final_q: f64,
    /// Number of `min-partial` invocations performed.
    pub guesses: usize,
    /// Monte-Carlo samples in the pool at termination (1 for exact oracles).
    pub samples_used: usize,
    /// How the oracle's row cache served the schedule's probability rows
    /// (all zero for oracles without a cache) — the observable measure of
    /// how much work the guessing schedule reused.
    pub row_cache: RowCacheStats,
    /// Lazy block-finalization counters of the backing engine (all zero
    /// unless the adaptive backend ran).
    pub engine: EngineStats,
    /// `Some` iff the run was interrupted mid-refinement and completed
    /// best-effort under [`DegradeMode::BestEffort`] (see
    /// [`crate::SolveResult::interrupt`]).
    pub interrupt: Option<InterruptReport>,
}

impl From<SolveResult> for McpResult {
    /// Projects a session [`SolveResult`] onto the legacy MCP shape.
    fn from(r: SolveResult) -> McpResult {
        McpResult {
            clustering: r.clustering,
            assign_probs: r.assign_probs,
            min_prob_estimate: r.objective_estimate,
            final_q: r.final_q,
            guesses: r.guesses,
            samples_used: r.samples_used,
            row_cache: r.row_cache,
            engine: r.engine,
            interrupt: r.interrupt,
        }
    }
}

/// Runs MCP on `graph` with Monte-Carlo estimation (unlimited path
/// length), on the backend selected by `cfg.engine`.
///
/// A thin wrapper over a single-request [`UgraphSession`] — workloads
/// issuing many requests on one graph (k-sweeps, depth comparisons) should
/// hold a session instead, which serves each request bit-identically to
/// this function while reusing the sampled worlds and cached rows.
pub fn mcp(
    graph: &UncertainGraph,
    k: usize,
    cfg: &ClusterConfig,
) -> Result<McpResult, ClusterError> {
    // One-shot calls ignore `shared_pool` (nothing to share in a
    // single-request session), preserving the per-family seed streams.
    let mut session = UgraphSession::new(graph, cfg.clone().with_shared_pool(false))?;
    session.solve(ClusterRequest::mcp(k)).map(McpResult::from)
}

/// Runs the depth-limited MCP variant (paper §3.4): connection
/// probabilities only count paths of length at most `d`. Per Lemma 5 the
/// oracle uses depth `d` for both selection and cover disks
/// (`min-partial-d(G, k, q, α, q̄, d, d)`). A thin wrapper over a
/// single-request [`UgraphSession`] (see [`mcp()`]).
pub fn mcp_depth(
    graph: &UncertainGraph,
    k: usize,
    d: u32,
    cfg: &ClusterConfig,
) -> Result<McpResult, ClusterError> {
    // One-shot calls ignore `shared_pool` (nothing to share in a
    // single-request session), preserving the per-family seed streams.
    let mut session = UgraphSession::new(graph, cfg.clone().with_shared_pool(false))?;
    session.solve(ClusterRequest::mcp_depth(k, d)).map(McpResult::from)
}

/// Runs MCP against an arbitrary [`Oracle`] (exact oracles included).
pub fn mcp_with_oracle<O: Oracle + ?Sized>(
    oracle: &mut O,
    k: usize,
    cfg: &ClusterConfig,
) -> Result<McpResult, ClusterError> {
    cfg.validate()?;
    let n = oracle.num_nodes();
    if k < 1 || k >= n {
        return Err(ClusterError::KOutOfRange { k, n });
    }
    let mut rng = SmallRng::seed_from_u64(mix_seed(cfg.seed, 0x6d63_7001));
    let mut guesses = 0usize;
    // One workspace for the whole schedule: every guess reuses the same
    // min-partial buffers, and the oracle's row cache carries center rows
    // across guesses (including the binary-search refinement).
    let mut ws = MinPartialWorkspace::new(n);

    // One guess of the schedule. The guess counter only advances for
    // invocations that ran to completion, so an interruption reports the
    // number of *completed* guesses.
    let run = |oracle: &mut O,
               q: f64,
               rng: &mut SmallRng,
               ws: &mut MinPartialWorkspace,
               g: &mut usize| {
        oracle.prepare(q)?;
        let eps = oracle.epsilon();
        let params = MinPartialParams { k, q, alpha: cfg.alpha, q_bar: q, epsilon: eps };
        let pc = min_partial_with(oracle, &params, rng, ws)?;
        *g += 1;
        Ok(pc)
    };

    let (success, final_q, interrupt): (PartialClustering, f64, Option<InterruptReport>) =
        match cfg.guess {
            GuessStrategy::Geometric => {
                // Algorithm 2 verbatim: q ← q/(1+γ) from 1 until coverage.
                // Until the first full clustering exists there is nothing
                // to degrade to, so interruptions always surface as typed
                // errors here (BestEffort included).
                let mut q = 1.0f64;
                loop {
                    let pc = match run(oracle, q, &mut rng, &mut ws, &mut guesses) {
                        Ok(pc) => pc,
                        Err(e) => return Err(interrupted(e, oracle.num_samples(), guesses)),
                    };
                    if pc.clustering.is_full() {
                        break (pc, q, None);
                    }
                    if q <= cfg.p_l {
                        return Err(ClusterError::NoFullClustering {
                            floor: cfg.p_l,
                            uncovered: pc.clustering.outliers().len(),
                        });
                    }
                    q = (q / (1.0 + cfg.gamma)).max(cfg.p_l);
                }
            }
            GuessStrategy::Accelerated => {
                // §5: q_i = max{1 − γ·2^i, p_L}, then binary search between
                // the last failing and the first succeeding guess.
                let mut hi = 1.0f64; // highest threshold known (or assumed) to fail
                let mut i = 0u32;
                let (mut best_pc, mut lo) = loop {
                    let q = (1.0 - cfg.gamma * f64::from(2u32.saturating_pow(i))).max(cfg.p_l);
                    let pc = match run(oracle, q, &mut rng, &mut ws, &mut guesses) {
                        Ok(pc) => pc,
                        Err(e) => return Err(interrupted(e, oracle.num_samples(), guesses)),
                    };
                    if pc.clustering.is_full() {
                        break (pc, q);
                    }
                    if q <= cfg.p_l {
                        return Err(ClusterError::NoFullClustering {
                            floor: cfg.p_l,
                            uncovered: pc.clustering.outliers().len(),
                        });
                    }
                    hi = q;
                    i += 1;
                };
                // Binary search in log space; stop when lo/hi > 1 − γ. A
                // full clustering is in hand from here on, so under
                // BestEffort an interruption just stops the refinement
                // early; injected faults still surface as errors.
                let mut interrupt = None;
                while lo / hi <= 1.0 - cfg.gamma {
                    let mid = (lo * hi).sqrt();
                    match run(oracle, mid, &mut rng, &mut ws, &mut guesses) {
                        Ok(pc) => {
                            if pc.clustering.is_full() {
                                best_pc = pc;
                                lo = mid;
                            } else {
                                hi = mid;
                            }
                        }
                        Err(e) => {
                            let err = interrupted(e, oracle.num_samples(), guesses);
                            match (cfg.degrade, err.interrupt_report().copied()) {
                                (DegradeMode::BestEffort, Some(report)) => {
                                    interrupt = Some(report);
                                    break;
                                }
                                _ => return Err(err),
                            }
                        }
                    }
                }
                (best_pc, lo, interrupt)
            }
        };

    let min_prob_estimate = success.min_covered_prob().unwrap_or(0.0);
    Ok(McpResult {
        clustering: success.clustering,
        assign_probs: success.assign_probs,
        min_prob_estimate,
        final_q,
        guesses,
        samples_used: oracle.num_samples(),
        row_cache: oracle.cache_stats(),
        engine: oracle.engine_stats(),
        interrupt,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_graph::{GraphBuilder, NodeId};
    use ugraph_sampling::{ExactOracle, ExactOracleAdapter};

    fn two_communities(bridge: f64) -> UncertainGraph {
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(u, v, 0.9).unwrap();
        }
        b.add_edge(2, 3, bridge).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn splits_communities_exact_oracle() {
        let g = two_communities(0.05);
        let mut oracle = ExactOracleAdapter::new(ExactOracle::new(&g).unwrap());
        let r = mcp_with_oracle(&mut oracle, 2, &ClusterConfig::default()).unwrap();
        assert!(r.clustering.is_full());
        let a = r.clustering.cluster_of(NodeId(0)).unwrap();
        assert_eq!(r.clustering.cluster_of(NodeId(1)), Some(a));
        assert_eq!(r.clustering.cluster_of(NodeId(2)), Some(a));
        let b = r.clustering.cluster_of(NodeId(3)).unwrap();
        assert_ne!(a, b);
        assert!(r.min_prob_estimate > 0.8, "pmin {}", r.min_prob_estimate);
        assert!(r.guesses >= 1);
        assert!(r.final_q > 0.0 && r.final_q <= 1.0);
    }

    #[test]
    fn splits_communities_monte_carlo() {
        let g = two_communities(0.05);
        let cfg = ClusterConfig::default().with_seed(7);
        let r = mcp(&g, 2, &cfg).unwrap();
        assert!(r.clustering.is_full());
        let a = r.clustering.cluster_of(NodeId(0));
        assert_eq!(r.clustering.cluster_of(NodeId(2)), a);
        assert_ne!(r.clustering.cluster_of(NodeId(4)), a);
        assert!(r.samples_used >= 50);
    }

    #[test]
    fn geometric_strategy_matches_quality() {
        let g = two_communities(0.05);
        let cfg = ClusterConfig::default().with_guess(GuessStrategy::Geometric).with_seed(3);
        let r = mcp(&g, 2, &cfg).unwrap();
        assert!(r.clustering.is_full());
        assert!(r.min_prob_estimate > 0.5);
        // Both strategies find equally good clusterings here.
        let acc = mcp(&g, 2, &ClusterConfig::default().with_seed(3)).unwrap();
        assert!((r.min_prob_estimate - acc.min_prob_estimate).abs() < 0.2);
    }

    #[test]
    fn k_out_of_range() {
        let g = two_communities(0.5);
        assert!(matches!(
            mcp(&g, 0, &ClusterConfig::default()),
            Err(ClusterError::KOutOfRange { .. })
        ));
        assert!(matches!(
            mcp(&g, 6, &ClusterConfig::default()),
            Err(ClusterError::KOutOfRange { .. })
        ));
    }

    #[test]
    fn disconnected_graph_with_small_k_fails_gracefully() {
        // 3 components, k = 2: no full clustering exists.
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(2, 3, 0.9).unwrap();
        b.add_edge(4, 5, 0.9).unwrap();
        let g = b.build().unwrap();
        let err = mcp(&g, 2, &ClusterConfig::default()).unwrap_err();
        assert!(matches!(err, ClusterError::NoFullClustering { .. }));
    }

    #[test]
    fn disconnected_graph_with_matching_k_succeeds() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(2, 3, 0.9).unwrap();
        b.add_edge(4, 5, 0.9).unwrap();
        let g = b.build().unwrap();
        let r = mcp(&g, 3, &ClusterConfig::default()).unwrap();
        assert!(r.clustering.is_full());
        assert!(r.min_prob_estimate > 0.8);
    }

    #[test]
    fn k_equals_n_minus_1() {
        let g = two_communities(0.5);
        let r = mcp(&g, 5, &ClusterConfig::default()).unwrap();
        assert!(r.clustering.is_full());
        assert_eq!(r.clustering.num_clusters(), 5);
        // With k = n−1, min-prob is at least the strongest pair's prob.
        assert!(r.min_prob_estimate > 0.5);
    }

    #[test]
    fn reproducible_with_seed() {
        let g = two_communities(0.2);
        let cfg = ClusterConfig::default().with_seed(1234);
        let r1 = mcp(&g, 2, &cfg).unwrap();
        let r2 = mcp(&g, 2, &cfg).unwrap();
        assert_eq!(r1.clustering, r2.clustering);
        assert_eq!(r1.min_prob_estimate, r2.min_prob_estimate);
        assert_eq!(r1.guesses, r2.guesses);
    }

    #[test]
    fn depth_limited_restricts_coverage() {
        // Path of 6 certain edges; depth-2 MCP with k=2 must use centers
        // that 2-hop-cover the path: e.g. centers at 1 and 4 cover 0..=3 and
        // 2..=5. So it succeeds with pmin = 1. With k = 1 no depth-2 center
        // covers nodes 4 hops away, so it must fail.
        let mut b = GraphBuilder::new(7);
        for i in 0..6 {
            b.add_edge(i, i + 1, 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let cfg = ClusterConfig::default();
        let r = mcp_depth(&g, 2, 3, &cfg).unwrap();
        assert!(r.clustering.is_full());
        assert!(r.min_prob_estimate >= 0.99);
        let err = mcp_depth(&g, 1, 2, &cfg).unwrap_err();
        assert!(matches!(err, ClusterError::NoFullClustering { .. }));
    }

    #[test]
    fn row_cache_and_batching_do_not_change_results() {
        use ugraph_sampling::EngineKind;
        let g = two_communities(0.2);
        for engine in [EngineKind::Scalar, EngineKind::BitParallel] {
            for alpha in [1usize, 4] {
                let on =
                    ClusterConfig::default().with_seed(9).with_engine(engine).with_alpha(alpha);
                let off = on.clone().with_row_cache(false);
                let a = mcp(&g, 2, &on).unwrap();
                let b = mcp(&g, 2, &off).unwrap();
                assert_eq!(a.clustering, b.clustering, "{engine:?} α={alpha}");
                assert_eq!(a.assign_probs, b.assign_probs, "{engine:?} α={alpha}");
                assert_eq!(a.min_prob_estimate, b.min_prob_estimate);
                assert_eq!((a.guesses, a.samples_used), (b.guesses, b.samples_used));
                // The cache must actually have been exercised, and the
                // uncached run must report only full recomputes.
                assert_eq!(a.row_cache.rows_served(), b.row_cache.rows_served());
                assert_eq!((b.row_cache.hits, b.row_cache.topups), (0, 0));
            }
        }
    }

    #[test]
    fn depth_row_cache_does_not_change_results() {
        use ugraph_sampling::EngineKind;
        let mut b = GraphBuilder::new(7);
        for i in 0..6 {
            b.add_edge(i, i + 1, 0.95).unwrap();
        }
        let g = b.build().unwrap();
        for engine in [EngineKind::Scalar, EngineKind::BitParallel] {
            let on = ClusterConfig::default().with_seed(4).with_engine(engine);
            let off = on.clone().with_row_cache(false);
            let a = mcp_depth(&g, 3, 2, &on).unwrap();
            let c = mcp_depth(&g, 3, 2, &off).unwrap();
            assert_eq!(a.clustering, c.clustering, "{engine:?}");
            assert_eq!(a.assign_probs, c.assign_probs, "{engine:?}");
            assert_eq!((c.row_cache.hits, c.row_cache.topups), (0, 0));
        }
    }

    #[test]
    fn theorem3_bound_on_exact_oracle() {
        // With the exact oracle the returned min-prob must satisfy
        // min-prob ≥ p²_opt-min / (1+γ) (Theorem 3). Brute-force the optimum.
        let g = two_communities(0.3);
        let exact = ExactOracle::new(&g).unwrap();
        let opt = crate::brute::brute_force_opt(&exact, 2).unwrap();
        let mut oracle = ExactOracleAdapter::new(ExactOracle::new(&g).unwrap());
        let r = mcp_with_oracle(&mut oracle, 2, &ClusterConfig::default()).unwrap();
        let bound = opt.best_min_prob * opt.best_min_prob / 1.1;
        assert!(
            r.min_prob_estimate >= bound - 1e-9,
            "min-prob {} below Theorem 3 bound {bound}",
            r.min_prob_estimate
        );
    }
}
