//! [`SessionHandle`] — an owned, thread-backed handle to a
//! [`UgraphSession`].
//!
//! A [`UgraphSession`] borrows its graph (`UgraphSession<'g>`), which makes
//! it awkward to store in registries, share across worker threads, or keep
//! alive independently of a caller's stack frame. A `SessionHandle` solves
//! this by moving the session onto a dedicated **actor thread** that owns
//! an `Arc` of the graph and serves typed commands over a channel:
//!
//! * the handle is `'static`, `Send`, and `Sync` — it can sit behind a
//!   registry lock and be shared by any number of server workers;
//! * every method takes `&self`; concurrent calls are **serialized in
//!   arrival order** by the actor's command queue (the per-session
//!   serialization a server wants), while distinct handles run fully in
//!   parallel;
//! * results are bit-identical to driving the underlying session directly:
//!   the actor does nothing but forward commands to
//!   [`UgraphSession::solve`] and friends;
//! * dropping the handle drains the queued commands, shuts the session
//!   down, and joins the thread.
//!
//! ```
//! use std::sync::Arc;
//! use ugraph_graph::GraphBuilder;
//! use ugraph_cluster::{ClusterConfig, ClusterRequest, SessionHandle};
//!
//! let mut b = GraphBuilder::new(6);
//! for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
//!     b.add_edge(u, v, 0.9).unwrap();
//! }
//! b.add_edge(2, 3, 0.05).unwrap();
//! let g = Arc::new(b.build().unwrap());
//!
//! let handle = SessionHandle::spawn(g, ClusterConfig::default()).unwrap();
//! let r = handle.solve(ClusterRequest::mcp(2)).unwrap();
//! assert_eq!(r.clustering.num_clusters(), 2);
//! assert_eq!(handle.stats().unwrap().requests, 1);
//! ```

use std::sync::{mpsc, Arc, Mutex};
use std::thread;

use ugraph_graph::UncertainGraph;
use ugraph_sampling::MemoryBudget;

use crate::clustering::Clustering;
use crate::config::ClusterConfig;
use crate::error::ClusterError;
use crate::request::{ClusterRequest, SolveResult};
use crate::session::{EvalQuality, SessionStats, UgraphSession};

/// One command of the actor protocol; each solve/evaluate/stats call
/// creates a one-shot reply channel and blocks on it.
enum Command {
    Solve(ClusterRequest, mpsc::Sender<Result<SolveResult, ClusterError>>),
    Evaluate(Clustering, Option<u32>, mpsc::Sender<EvalQuality>),
    Stats(mpsc::Sender<SessionStats>),
    SetEvalSamples(usize),
}

/// An owned, shareable handle to a [`UgraphSession`] running on its own
/// actor thread — see the [module docs](self) for the contract.
pub struct SessionHandle {
    /// Command queue into the actor (`None` once shut down). Behind a
    /// mutex only so the handle is `Sync` on every toolchain; each call
    /// clones the sender out and releases the lock before blocking.
    tx: Mutex<Option<mpsc::Sender<Command>>>,
    join: Option<thread::JoinHandle<()>>,
    graph: Arc<UncertainGraph>,
    config: ClusterConfig,
}

impl SessionHandle {
    /// Spawns a session over `graph` with a private memory ledger derived
    /// from [`ClusterConfig::memory_budget`] (the [`UgraphSession::new`]
    /// behavior).
    ///
    /// # Errors
    /// [`ClusterError::InvalidConfig`] for invalid parameter ranges;
    /// [`ClusterError::SessionClosed`] if the actor thread cannot be
    /// spawned.
    pub fn spawn(graph: Arc<UncertainGraph>, config: ClusterConfig) -> Result<Self, ClusterError> {
        let ledger =
            config.memory_budget.map_or_else(MemoryBudget::unbounded, MemoryBudget::bounded);
        SessionHandle::spawn_with_ledger(graph, config, ledger)
    }

    /// Spawns a session charging against a caller-supplied `ledger` (the
    /// [`UgraphSession::with_ledger`] behavior) — hand each session a
    /// [`MemoryBudget::subledger`] of one global budget to run many
    /// sessions under a shared ceiling.
    ///
    /// # Errors
    /// As [`SessionHandle::spawn`].
    pub fn spawn_with_ledger(
        graph: Arc<UncertainGraph>,
        config: ClusterConfig,
        ledger: MemoryBudget,
    ) -> Result<Self, ClusterError> {
        // Validate synchronously so a bad config is a typed error here,
        // not a dead actor discovered on first use.
        config.validate()?;
        let (tx, rx) = mpsc::channel::<Command>();
        let thread_graph = Arc::clone(&graph);
        let thread_config = config.clone();
        let join = thread::Builder::new()
            .name("ugraph-session".into())
            .spawn(move || {
                // Cannot fail: the config was validated above and
                // validation is deterministic.
                let Ok(mut session) =
                    UgraphSession::with_ledger(&thread_graph, thread_config, ledger)
                else {
                    return;
                };
                // The loop ends when every sender is gone (handle dropped
                // and no call in flight); queued commands are drained
                // first, so shutdown never loses accepted work.
                while let Ok(command) = rx.recv() {
                    match command {
                        Command::Solve(request, reply) => {
                            let _ = reply.send(session.solve(request));
                        }
                        Command::Evaluate(clustering, depth, reply) => {
                            let quality = match depth {
                                None => session.evaluate(&clustering),
                                Some(d) => session.evaluate_depth(&clustering, d),
                            };
                            let _ = reply.send(quality);
                        }
                        Command::Stats(reply) => {
                            let _ = reply.send(session.stats());
                        }
                        Command::SetEvalSamples(samples) => {
                            session.set_eval_samples(samples);
                        }
                    }
                }
            })
            .map_err(|_| ClusterError::SessionClosed)?;
        Ok(SessionHandle { tx: Mutex::new(Some(tx)), join: Some(join), graph, config })
    }

    /// The graph the session is bound to.
    pub fn graph(&self) -> &Arc<UncertainGraph> {
        &self.graph
    }

    /// The session's (immutable) configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Clones the command sender out of the lock (never holds it while
    /// blocking on a reply).
    fn sender(&self) -> Result<mpsc::Sender<Command>, ClusterError> {
        self.tx
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .cloned()
            .ok_or(ClusterError::SessionClosed)
    }

    /// Sends `command` built around a fresh reply channel and blocks for
    /// the reply.
    fn call<T>(&self, build: impl FnOnce(mpsc::Sender<T>) -> Command) -> Result<T, ClusterError> {
        let (reply_tx, reply_rx) = mpsc::channel();
        self.sender()?.send(build(reply_tx)).map_err(|_| ClusterError::SessionClosed)?;
        reply_rx.recv().map_err(|_| ClusterError::SessionClosed)
    }

    /// Solves one typed request — exactly [`UgraphSession::solve`], with
    /// the additional [`ClusterError::SessionClosed`] failure mode when
    /// the actor is gone. Concurrent calls on one handle are served one
    /// at a time in arrival order.
    ///
    /// # Errors
    /// The [`UgraphSession::solve`] error contract, plus
    /// [`ClusterError::SessionClosed`].
    pub fn solve(&self, request: ClusterRequest) -> Result<SolveResult, ClusterError> {
        self.call(|reply| Command::Solve(request, reply))?
    }

    /// Estimates `p_min`/`p_avg` of `clustering` over the session's
    /// evaluation pool ([`UgraphSession::evaluate`]).
    ///
    /// # Errors
    /// [`ClusterError::InvalidConfig`] if `clustering` is sized for a
    /// different graph (checked here, where the borrowed session would
    /// panic); [`ClusterError::SessionClosed`] when the actor is gone.
    pub fn evaluate(&self, clustering: Clustering) -> Result<EvalQuality, ClusterError> {
        self.evaluate_impl(clustering, None)
    }

    /// Depth-limited [`SessionHandle::evaluate`]
    /// ([`UgraphSession::evaluate_depth`]).
    ///
    /// # Errors
    /// As [`SessionHandle::evaluate`].
    pub fn evaluate_depth(
        &self,
        clustering: Clustering,
        depth: u32,
    ) -> Result<EvalQuality, ClusterError> {
        self.evaluate_impl(clustering, Some(depth))
    }

    fn evaluate_impl(
        &self,
        clustering: Clustering,
        depth: Option<u32>,
    ) -> Result<EvalQuality, ClusterError> {
        let (n, have) = (self.graph.num_nodes(), clustering.num_nodes());
        if n != have {
            return Err(ClusterError::InvalidConfig {
                message: format!("clustering is sized for {have} nodes, the session graph has {n}"),
            });
        }
        self.call(|reply| Command::Evaluate(clustering, depth, reply))
    }

    /// Cumulative session statistics ([`UgraphSession::stats`]).
    ///
    /// # Errors
    /// [`ClusterError::SessionClosed`] when the actor is gone.
    pub fn stats(&self) -> Result<SessionStats, ClusterError> {
        self.call(Command::Stats)
    }

    /// Sets the evaluation-pool size ([`UgraphSession::set_eval_samples`]).
    /// Applied in queue order relative to other calls on this handle.
    ///
    /// # Errors
    /// [`ClusterError::SessionClosed`] when the actor is gone.
    pub fn set_eval_samples(&self, samples: usize) -> Result<(), ClusterError> {
        self.sender()?
            .send(Command::SetEvalSamples(samples))
            .map_err(|_| ClusterError::SessionClosed)
    }
}

impl Drop for SessionHandle {
    /// Closes the command queue and joins the actor, draining (not
    /// abandoning) any already-queued commands first. Attach a deadline or
    /// [`CancelToken`](ugraph_sampling::CancelToken) to in-flight requests
    /// to bound how long the drain can take.
    fn drop(&mut self) {
        *self.tx.get_mut().unwrap_or_else(|e| e.into_inner()) = None;
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl std::fmt::Debug for SessionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionHandle")
            .field("nodes", &self.graph.num_nodes())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ClusterRequest;
    use std::time::Duration;
    use ugraph_graph::GraphBuilder;

    fn two_communities() -> Arc<UncertainGraph> {
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(u, v, 0.9).unwrap();
        }
        b.add_edge(2, 3, 0.2).unwrap();
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn handle_matches_direct_session_bit_for_bit() {
        let g = two_communities();
        let cfg = ClusterConfig::default().with_seed(11);
        let handle = SessionHandle::spawn(Arc::clone(&g), cfg.clone()).unwrap();
        let mut direct = UgraphSession::new(&g, cfg).unwrap();
        for k in [2usize, 3] {
            let a = handle.solve(ClusterRequest::mcp(k)).unwrap();
            let b = direct.solve(ClusterRequest::mcp(k)).unwrap();
            assert_eq!(a.clustering, b.clustering);
            assert_eq!(a.objective_estimate, b.objective_estimate);
            assert_eq!(a.assign_probs, b.assign_probs);
        }
        let a = handle.solve(ClusterRequest::acp(2)).unwrap();
        let b = direct.solve(ClusterRequest::acp(2)).unwrap();
        assert_eq!(a.clustering, b.clustering);
        let qa = handle.evaluate(a.clustering).unwrap();
        let qb = direct.evaluate(&b.clustering);
        assert_eq!(qa, qb);
        assert_eq!(handle.stats().unwrap().kv_line(), direct.stats().kv_line());
    }

    #[test]
    fn concurrent_callers_are_serialized_not_poisoned() {
        let g = two_communities();
        let handle =
            Arc::new(SessionHandle::spawn(g, ClusterConfig::default().with_seed(3)).unwrap());
        let workers: Vec<_> = (0..4)
            .map(|i| {
                let h = Arc::clone(&handle);
                thread::spawn(move || h.solve(ClusterRequest::mcp(2 + (i % 2))))
            })
            .collect();
        for w in workers {
            let r = w.join().unwrap().unwrap();
            assert!(r.clustering.num_clusters() >= 2);
        }
        assert_eq!(handle.stats().unwrap().requests, 4);
    }

    #[test]
    fn errors_and_mismatches_are_typed_not_panics() {
        let g = two_communities();
        let handle = SessionHandle::spawn(Arc::clone(&g), ClusterConfig::default()).unwrap();
        assert!(matches!(
            handle.solve(ClusterRequest::mcp(0)),
            Err(ClusterError::KOutOfRange { .. })
        ));
        // A deadline that has already passed interrupts deterministically,
        // and the session survives to serve the re-issue.
        let late = ClusterRequest::mcp(2).with_deadline(Duration::ZERO);
        assert!(matches!(handle.solve(late), Err(ClusterError::DeadlineExceeded(_))));
        assert!(handle.solve(ClusterRequest::mcp(2)).is_ok());
        // Wrong-sized clusterings are rejected before reaching the actor.
        let wrong = Clustering::new(vec![ugraph_graph::NodeId(0)], vec![Some(0); 3]);
        assert!(matches!(handle.evaluate(wrong), Err(ClusterError::InvalidConfig { .. })));
        // Bad configs fail at spawn, synchronously.
        assert!(SessionHandle::spawn(g, ClusterConfig::default().with_gamma(0.0)).is_err());
    }

    #[test]
    fn eval_samples_apply_in_queue_order() {
        let g = two_communities();
        let handle = SessionHandle::spawn(g, ClusterConfig::default()).unwrap();
        handle.set_eval_samples(32).unwrap();
        let r = handle.solve(ClusterRequest::mcp(2)).unwrap();
        let q = handle.evaluate(r.clustering).unwrap();
        assert_eq!(q.samples, 32);
    }
}
