//! Typed clustering requests and their unified result — the vocabulary of
//! [`UgraphSession::solve`](crate::session::UgraphSession::solve).
//!
//! The paper's four entry points (`mcp`, `mcp_depth`, `acp`, `acp_depth`)
//! differ along exactly two axes: the **objective** (minimum vs. average
//! connection probability) and the **depth** restriction on the paths that
//! contribute to connection probabilities (§3.4). [`ClusterRequest`]
//! spells both out, so one `solve` entry point serves the whole quartet —
//! and a session can interleave request shapes while reusing the sampled
//! state behind each one.

use std::fmt;
use std::time::Duration;

use ugraph_sampling::{CancelToken, EngineStats, RowCacheStats};

use crate::clustering::Clustering;
use crate::config::{AcpInvocation, ClusterConfig};
use crate::error::InterruptReport;

/// Which objective of the paper a request optimizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Objective {
    /// Maximize the **minimum** connection probability of a node to its
    /// center — MCP, the k-center analogue (Theorem 3).
    MinProb,
    /// Maximize the **average** connection probability of the nodes to
    /// their centers — ACP, the k-median analogue (Theorem 4).
    AvgProb,
}

/// Depth restriction of a request (which paths count toward connection
/// probabilities, paper §3.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DepthSpec {
    /// Unlimited path length — the plain MCP/ACP setting.
    Unlimited,
    /// The `d` of `mcp_depth`/`acp_depth`: selection and cover depths are
    /// derived per algorithm (Lemma 5 uses `(d, d)` for MCP; the ACP
    /// *Theory* invocation uses `(⌊d/3⌋, d)` per Theorem 6, *Practical*
    /// uses `(d, d)`), resolved against the session's
    /// [`ClusterConfig::acp_invocation`] at solve time.
    Uniform(u32),
    /// Explicit selection/cover depths (the generalized form exposed by
    /// [`ClusterRequest::with_depths`]).
    Explicit { d_select: u32, d_cover: u32 },
}

/// One typed clustering request served by a
/// [`UgraphSession`](crate::session::UgraphSession).
///
/// ```
/// use ugraph_cluster::ClusterRequest;
///
/// let plain = ClusterRequest::mcp(4);
/// let depth_limited = ClusterRequest::acp_depth(4, 3);
/// let explicit = ClusterRequest::mcp(4).with_depths(1, 3);
/// assert_ne!(plain, explicit);
/// ```
///
/// A request can carry its own run budget — a wall-clock deadline
/// ([`ClusterRequest::with_deadline`]) and/or a cancellation token
/// ([`ClusterRequest::with_cancel_token`]) — composing with any
/// session-level budget on the [`ClusterConfig`]: the tighter deadline
/// wins and every token is honored.
#[derive(Clone, Debug)]
pub struct ClusterRequest {
    objective: Objective,
    k: usize,
    depth: DepthSpec,
    deadline: Option<Duration>,
    cancel: Option<CancelToken>,
}

impl PartialEq for ClusterRequest {
    /// Cancellation tokens compare by clone identity
    /// ([`CancelToken::same_token`]); everything else structurally.
    fn eq(&self, other: &Self) -> bool {
        self.objective == other.objective
            && self.k == other.k
            && self.depth == other.depth
            && self.deadline == other.deadline
            && match (&self.cancel, &other.cancel) {
                (None, None) => true,
                (Some(a), Some(b)) => a.same_token(b),
                _ => false,
            }
    }
}

impl Eq for ClusterRequest {}

impl ClusterRequest {
    /// MCP with unlimited path length: maximize the minimum connection
    /// probability over a `k`-clustering (equivalent to the free function
    /// [`crate::mcp()`](crate::mcp::mcp)).
    pub fn mcp(k: usize) -> Self {
        ClusterRequest {
            objective: Objective::MinProb,
            k,
            depth: DepthSpec::Unlimited,
            deadline: None,
            cancel: None,
        }
    }

    /// Depth-limited MCP: only paths of length ≤ `d` contribute
    /// (equivalent to [`crate::mcp_depth()`](crate::mcp::mcp_depth); per
    /// Lemma 5 both the selection and cover disks use depth `d`).
    pub fn mcp_depth(k: usize, d: u32) -> Self {
        ClusterRequest { depth: DepthSpec::Uniform(d), ..ClusterRequest::mcp(k) }
    }

    /// ACP with unlimited path length: maximize the average connection
    /// probability (equivalent to [`crate::acp()`](crate::acp::acp)).
    pub fn acp(k: usize) -> Self {
        ClusterRequest { objective: Objective::AvgProb, ..ClusterRequest::mcp(k) }
    }

    /// Depth-limited ACP (equivalent to
    /// [`crate::acp_depth()`](crate::acp::acp_depth); the selection depth
    /// follows the session's [`AcpInvocation`]).
    pub fn acp_depth(k: usize, d: u32) -> Self {
        ClusterRequest { depth: DepthSpec::Uniform(d), ..ClusterRequest::acp(k) }
    }

    /// Overrides the depth pair explicitly: selection disks at depth
    /// `d_select`, cover disks at depth `d_cover` (`d_select ≤ d_cover`;
    /// violations surface as a configuration error at solve time). The
    /// generalized form of the `*_depth` constructors.
    pub fn with_depths(mut self, d_select: u32, d_cover: u32) -> Self {
        self.depth = DepthSpec::Explicit { d_select, d_cover };
        self
    }

    /// Bounds this request to `deadline` of wall-clock time from the
    /// moment the solve starts. On expiry the solve stops cooperatively at
    /// the next shard/block checkpoint and returns
    /// [`ClusterError::DeadlineExceeded`](crate::ClusterError::DeadlineExceeded)
    /// (or a best-effort partial result under
    /// [`DegradeMode::BestEffort`](crate::config::DegradeMode::BestEffort)).
    /// Composes with a session-level
    /// [`ClusterConfig::with_timeout`](crate::ClusterConfig::with_timeout):
    /// the tighter deadline wins.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(self.deadline.map_or(deadline, |d| d.min(deadline)));
        self
    }

    /// Attaches a cancellation token to this request; cancel any clone of
    /// the token (e.g. from another thread) and the solve stops at its
    /// next checkpoint with
    /// [`ClusterError::Cancelled`](crate::ClusterError::Cancelled).
    /// Composes with any session-level token — both are honored.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The per-request wall-clock bound, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The per-request cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// The request's objective.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// The requested number of clusters.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The `(d_select, d_cover)` depth pair this request resolves to under
    /// `config`, or `None` for unlimited path length.
    pub(crate) fn resolved_depths(&self, config: &ClusterConfig) -> Option<(u32, u32)> {
        match self.depth {
            DepthSpec::Unlimited => None,
            DepthSpec::Uniform(d) => match self.objective {
                Objective::MinProb => Some((d, d)),
                Objective::AvgProb => {
                    let d_select = match config.acp_invocation {
                        AcpInvocation::Theory => (d / 3).max(1),
                        AcpInvocation::Practical => d,
                    };
                    Some((d_select.min(d), d))
                }
            },
            DepthSpec::Explicit { d_select, d_cover } => Some((d_select, d_cover)),
        }
    }
}

impl fmt::Display for ClusterRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self.objective {
            Objective::MinProb => "mcp",
            Objective::AvgProb => "acp",
        };
        match self.depth {
            DepthSpec::Unlimited => write!(f, "{name}(k={})", self.k),
            DepthSpec::Uniform(d) => write!(f, "{name}(k={}, d={d})", self.k),
            DepthSpec::Explicit { d_select, d_cover } => {
                write!(f, "{name}(k={}, d_select={d_select}, d_cover={d_cover})", self.k)
            }
        }
    }
}

/// Unified result of [`UgraphSession::solve`](crate::session::UgraphSession::solve) — the common shape behind
/// [`McpResult`](crate::mcp::McpResult) and
/// [`AcpResult`](crate::acp::AcpResult).
#[derive(Clone, Debug)]
pub struct SolveResult {
    /// The request that produced this result.
    pub request: ClusterRequest,
    /// The full k-clustering.
    pub clustering: Clustering,
    /// Estimated connection probability of each node to its center.
    pub assign_probs: Vec<f64>,
    /// The driver's own estimate of its objective: minimum assignment
    /// probability for [`Objective::MinProb`], the best partial average
    /// `φ_best` for [`Objective::AvgProb`].
    pub objective_estimate: f64,
    /// The threshold `q` that produced the returned clustering.
    pub final_q: f64,
    /// Number of `min-partial` invocations performed.
    pub guesses: usize,
    /// Monte-Carlo samples backing this request's estimates (the active
    /// window — identical to what a one-shot run would have used).
    pub samples_used: usize,
    /// Row-cache service counters accumulated **by this request** (the
    /// session-cumulative counters live in
    /// [`SessionStats`](crate::session::SessionStats)). On a warm session
    /// the hits/top-ups here are rows inherited from earlier requests.
    pub row_cache: RowCacheStats,
    /// Lazy block-finalization counters accumulated **by this request**
    /// (all zero unless the adaptive backend ran). On a warm session the
    /// `label_queries` here are served from blocks finalized by earlier
    /// requests.
    pub engine: EngineStats,
    /// Wall-clock time spent solving this request.
    pub elapsed: Duration,
    /// `Some` iff the solve was interrupted and completed **best-effort**
    /// under [`DegradeMode::BestEffort`](crate::config::DegradeMode):
    /// the clustering is the best one found before the interruption, and
    /// the report says how far the solve got. `None` for a run that
    /// completed its full schedule.
    pub interrupt: Option<InterruptReport>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_resolution_follows_the_paper() {
        let cfg = ClusterConfig::default(); // Practical ACP invocation
        assert_eq!(ClusterRequest::mcp(3).resolved_depths(&cfg), None);
        assert_eq!(ClusterRequest::mcp_depth(3, 4).resolved_depths(&cfg), Some((4, 4)));
        assert_eq!(ClusterRequest::acp_depth(3, 4).resolved_depths(&cfg), Some((4, 4)));
        let theory = cfg.clone().with_acp_invocation(AcpInvocation::Theory);
        assert_eq!(ClusterRequest::acp_depth(3, 4).resolved_depths(&theory), Some((1, 4)));
        assert_eq!(ClusterRequest::acp_depth(3, 9).resolved_depths(&theory), Some((3, 9)));
        assert_eq!(ClusterRequest::acp(3).with_depths(2, 5).resolved_depths(&theory), Some((2, 5)));
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(ClusterRequest::mcp(2).to_string(), "mcp(k=2)");
        assert_eq!(ClusterRequest::acp_depth(5, 3).to_string(), "acp(k=5, d=3)");
        assert_eq!(
            ClusterRequest::mcp(2).with_depths(1, 4).to_string(),
            "mcp(k=2, d_select=1, d_cover=4)"
        );
    }
}
