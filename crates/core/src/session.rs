//! [`UgraphSession`] — a graph-bound solver that amortizes sampled state
//! across many clustering requests.
//!
//! The MCP/ACP drivers are rarely run once: real workloads sweep `k`,
//! compare depth variants, and re-evaluate metrics on the *same* uncertain
//! graph. The one-shot free functions ([`crate::mcp()`](crate::mcp::mcp)
//! and friends) construct a fresh engine per call, resample the world pool
//! from scratch, and discard the oracle's row cache on return. A session
//! keeps all of that alive:
//!
//! * one **engine + grow-only pool per request shape** (seeded exactly as
//!   the one-shot entry points seed theirs), so a k-sweep's later requests
//!   reuse every world the earlier ones sampled;
//! * the oracles' **incremental row caches** carry across requests —
//!   grow-only pools mean cached integer rows are never invalid, so later
//!   requests start warm;
//! * per-request **bit-identity** with the one-shot functions: each
//!   request re-runs the schedule over an *active sample window* that
//!   contains exactly the worlds a fresh oracle would have drawn (see
//!   [`Oracle::begin_request`]), so `session.solve(ClusterRequest::mcp(k))`
//!   returns the same clustering, probabilities, and guess trace as
//!   `mcp(&g, k, &config)` — only faster;
//! * a shared **evaluation pool** for
//!   [`UgraphSession::evaluate`] and the `ugraph-metrics` quality
//!   functions, replacing the ad-hoc pools callers used to build;
//! * cumulative [`SessionStats`]: worlds held, rows served per cache
//!   tier, and per-request timings.
//!
//! ```
//! use ugraph_graph::GraphBuilder;
//! use ugraph_cluster::{ClusterConfig, ClusterRequest, UgraphSession};
//!
//! let mut b = GraphBuilder::new(6);
//! for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
//!     b.add_edge(u, v, 0.9).unwrap();
//! }
//! b.add_edge(2, 3, 0.05).unwrap();
//! let g = b.build().unwrap();
//!
//! let mut session = UgraphSession::new(&g, ClusterConfig::default()).unwrap();
//! // A k-sweep through one session: later requests reuse the sampled
//! // worlds and cached rows of the earlier ones.
//! for k in 2..=4 {
//!     let r = session.solve(ClusterRequest::mcp(k)).unwrap();
//!     assert_eq!(r.clustering.num_clusters(), k);
//! }
//! let best = session.solve(ClusterRequest::mcp(2)).unwrap();
//! let quality = session.evaluate(&best.clustering);
//! assert!(quality.p_min > 0.5);
//! let stats = session.stats();
//! assert_eq!(stats.requests, 4);
//! assert!(stats.row_cache.hits + stats.row_cache.topups > 0);
//! ```

use std::fmt;
use std::time::{Duration, Instant};

use ugraph_graph::{NodeId, UncertainGraph};
use ugraph_sampling::rng::mix_seed;
use ugraph_sampling::{
    assignment_probs, quality_from_probs, ComponentPool, DepthMcOracle, EngineStats, McOracle,
    MemoryBudget, MemoryStats, Oracle, RowCacheStats, RunState, WorldPool,
};

use crate::acp::acp_with_oracle;
use crate::clustering::Clustering;
use crate::config::ClusterConfig;
use crate::error::ClusterError;
use crate::mcp::mcp_with_oracle;
use crate::request::{ClusterRequest, Objective, SolveResult};

/// Seed tags decorrelating each oracle family's sampling streams from the
/// candidate rng — identical to the tags the one-shot entry points use, so
/// session-served requests see the very same worlds.
const TAG_MCP: u64 = 0x4d43_5031; // "MCP1"
const TAG_MCP_DEPTH: u64 = 0x4d43_5044; // "MCPD"
const TAG_ACP: u64 = 0x4143_5031; // "ACP1"
const TAG_ACP_DEPTH: u64 = 0x4143_5044; // "ACPD"
/// Seed tags of the **shared-pool** mode ([`ClusterConfig::shared_pool`]):
/// one pool per depth shape, shared by the MCP and ACP oracle families.
/// Deliberately distinct from the per-family tags — shared-pool results are
/// deterministic for a fixed seed but *not* bit-identical to the one-shot
/// entry points, which sample each family from its own stream.
const TAG_SHARED: u64 = 0x5348_5244; // "SHRD"
const TAG_SHARED_DEPTH: u64 = 0x5348_4450; // "SHDP"
/// Seed tag of the session's evaluation pool (decorrelated from every
/// solver pool, so evaluation is an unbiased re-estimate).
const TAG_EVAL: u64 = 0x4556_414c; // "EVAL"

/// Default size of the evaluation pool backing
/// [`UgraphSession::evaluate`].
pub const DEFAULT_EVAL_SAMPLES: usize = 512;

/// The oracle shape a request resolves to: one cached oracle (engine +
/// pool + row cache) exists per distinct key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct OracleKey {
    /// `None` = the session runs in **shared-pool** mode
    /// ([`ClusterConfig::shared_pool`]): the MCP and ACP families resolve
    /// to the same oracle per depth shape instead of one each.
    objective: Option<Objective>,
    /// `None` = unlimited path length (a [`McOracle`]); `Some` = the
    /// resolved `(d_select, d_cover)` pair (a [`DepthMcOracle`]).
    depths: Option<(u32, u32)>,
}

/// Per-request record kept in [`SessionStats::per_request`].
#[derive(Clone, Debug)]
pub struct RequestRecord {
    /// Human-readable request label (the request's `Display` form).
    pub label: String,
    /// Monte-Carlo samples the request's estimates integrated over.
    pub samples_used: usize,
    /// `min-partial` invocations performed.
    pub guesses: usize,
    /// Row-cache service counters of this request alone.
    pub row_cache: RowCacheStats,
    /// Block-finalization counters of this request alone (adaptive
    /// backend only).
    pub engine: EngineStats,
    /// Memory-ledger snapshot of this request alone: bytes held at
    /// completion, plus shards evicted/regenerated while it ran (all
    /// relevant only when [`ClusterConfig::memory_budget`] is set).
    pub memory: MemoryStats,
    /// Wall-clock solve time.
    pub elapsed: Duration,
}

/// Cumulative statistics of a [`UgraphSession`].
#[derive(Clone, Debug, Default)]
pub struct SessionStats {
    /// Solve requests issued (successful or not).
    pub requests: usize,
    /// [`UgraphSession::evaluate`] calls served.
    pub evaluations: usize,
    /// Worlds currently held across all of the session's pools (solver
    /// oracles + evaluation pool). On a warm session this is what the
    /// requests *shared*; the same requests one-shot would have sampled
    /// roughly `Σ samples_used` worlds instead.
    pub worlds_held: usize,
    /// Aggregate row-cache service across all solver oracles.
    pub row_cache: RowCacheStats,
    /// Aggregate lazy block-finalization counters across all solver
    /// oracles (all zero unless the adaptive backend ran).
    pub engine: EngineStats,
    /// Solver oracles (engine + pool + row cache) the session holds — in
    /// shared-pool mode the MCP/ACP families collapse onto one per depth
    /// shape, which is where the `worlds_held` dedup comes from.
    pub solver_pools: usize,
    /// Bytes currently charged to the session's shared memory ledger
    /// (resident sample shards across every pool, plus cached rows).
    pub bytes_held: usize,
    /// Sample shards evicted under memory pressure across the session's
    /// lifetime (0 without a [`ClusterConfig::memory_budget`]).
    pub shards_evicted: u64,
    /// Evicted shards regenerated bit-identically from their per-index
    /// RNG streams when a query touched them again.
    pub shards_regenerated: u64,
    /// Total wall-clock time spent in [`UgraphSession::solve`].
    pub solve_time: Duration,
    /// One record per successful solve request, in issue order.
    pub per_request: Vec<RequestRecord>,
}

impl SessionStats {
    /// Compact machine-readable `key=value` rendering (space-separated,
    /// one line, fixed key set) — the stable form consumed by the wire
    /// protocol's `stats` response and by scripts, kept separate from the
    /// human-oriented [`Display`](fmt::Display) text so the latter can
    /// evolve freely. Durations are reported in integer milliseconds.
    pub fn kv_line(&self) -> String {
        format!(
            "requests={} evaluations={} worlds_held={} solver_pools={} cache_hits={} \
             cache_topups={} cache_fulls={} finalized_blocks={} finalized_lanes={} \
             label_queries={} mask_queries={} bytes_held={} shards_evicted={} \
             shards_regenerated={} solve_time_ms={}",
            self.requests,
            self.evaluations,
            self.worlds_held,
            self.solver_pools,
            self.row_cache.hits,
            self.row_cache.topups,
            self.row_cache.fulls,
            self.engine.finalized_blocks,
            self.engine.finalized_lanes,
            self.engine.label_queries,
            self.engine.mask_queries,
            self.bytes_held,
            self.shards_evicted,
            self.shards_regenerated,
            self.solve_time.as_millis(),
        )
    }
}

impl fmt::Display for SessionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} request(s), {} evaluation(s), {} world(s) held in {} solver pool(s); row cache: \
             {} hits, {} top-ups, {} full recomputes; finalized {} block(s) / {} lane(s), {} \
             label-served / {} mask-served block-queries; memory: {} byte(s) held, {} shard(s) \
             evicted, {} regenerated; solve time {:.2?}",
            self.requests,
            self.evaluations,
            self.worlds_held,
            self.solver_pools,
            self.row_cache.hits,
            self.row_cache.topups,
            self.row_cache.fulls,
            self.engine.finalized_blocks,
            self.engine.finalized_lanes,
            self.engine.label_queries,
            self.engine.mask_queries,
            self.bytes_held,
            self.shards_evicted,
            self.shards_regenerated,
            self.solve_time
        )
    }
}

/// `p_min`/`p_avg` of a clustering over the session's evaluation pool (an
/// unbiased re-estimate with samples decorrelated from the solver pools).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EvalQuality {
    /// Minimum estimated connection probability of a covered node to its
    /// center (1.0 if nothing is covered).
    pub p_min: f64,
    /// Average estimated connection probability over all nodes, outliers
    /// contributing 0.
    pub p_avg: f64,
    /// Samples the estimate integrated over.
    pub samples: usize,
}

/// A graph-bound clustering solver serving many typed requests over shared
/// sampled state — see the [module docs](self) for the full contract.
pub struct UgraphSession<'g> {
    graph: &'g UncertainGraph,
    config: ClusterConfig,
    /// One oracle (engine + grow-only pool + row cache) per request shape
    /// seen so far; linear scan — a session holds a handful at most.
    oracles: Vec<(OracleKey, Box<dyn Oracle + 'g>)>,
    /// Lazily-built evaluation pool shared by [`UgraphSession::evaluate`]
    /// and the metrics layer ([`UgraphSession::eval_pool`]).
    eval: Option<ComponentPool<'g>>,
    /// Lazily-built depth-capable evaluation pool backing
    /// [`UgraphSession::evaluate_depth`] (same seed stream as `eval`, so
    /// both integrate the same sampled worlds).
    eval_depth: Option<WorldPool<'g>>,
    /// One shared memory ledger for every solver oracle and evaluation
    /// pool — bounded by [`ClusterConfig::memory_budget`], unbounded
    /// (accounting only) otherwise. The shared recency clock makes shard
    /// eviction LRU across all of the session's pools.
    budget: MemoryBudget,
    eval_samples: usize,
    requests: usize,
    evaluations: usize,
    solve_time: Duration,
    per_request: Vec<RequestRecord>,
}

impl<'g> UgraphSession<'g> {
    /// Creates a session over `graph`. The configuration is fixed for the
    /// session's lifetime — it determines the sampling seeds, so changing
    /// it mid-session would silently break the bit-identity contract.
    ///
    /// # Errors
    /// Returns [`ClusterError::InvalidConfig`] for invalid parameter
    /// ranges (same validation as the one-shot entry points).
    pub fn new(graph: &'g UncertainGraph, config: ClusterConfig) -> Result<Self, ClusterError> {
        let budget =
            config.memory_budget.map_or_else(MemoryBudget::unbounded, MemoryBudget::bounded);
        UgraphSession::with_ledger(graph, config, budget)
    }

    /// Creates a session whose pools and caches charge against a
    /// caller-supplied `ledger` instead of a private one — the seam a
    /// server uses to place many sessions under one *global*
    /// [`MemoryBudget`]: hand each session
    /// [`MemoryBudget::subledger`]`(config.memory_budget)` of the shared
    /// budget, and every session's shards feel global pressure while its
    /// own stats still report only its own bytes. The supplied ledger
    /// takes precedence over [`ClusterConfig::memory_budget`] (which
    /// [`UgraphSession::new`] would otherwise derive a private ledger
    /// from).
    ///
    /// # Errors
    /// Returns [`ClusterError::InvalidConfig`] for invalid parameter
    /// ranges, exactly as [`UgraphSession::new`].
    pub fn with_ledger(
        graph: &'g UncertainGraph,
        config: ClusterConfig,
        ledger: MemoryBudget,
    ) -> Result<Self, ClusterError> {
        config.validate()?;
        Ok(UgraphSession {
            graph,
            config,
            oracles: Vec::new(),
            eval: None,
            eval_depth: None,
            budget: ledger,
            eval_samples: DEFAULT_EVAL_SAMPLES,
            requests: 0,
            evaluations: 0,
            solve_time: Duration::ZERO,
            per_request: Vec::new(),
        })
    }

    /// Builder-style setter for the evaluation-pool size (default
    /// [`DEFAULT_EVAL_SAMPLES`]). The pool is grow-only: raising the value
    /// later tops it up, lowering it has no effect on an existing pool.
    pub fn with_eval_samples(mut self, samples: usize) -> Self {
        self.set_eval_samples(samples);
        self
    }

    /// In-place variant of [`UgraphSession::with_eval_samples`].
    pub fn set_eval_samples(&mut self, samples: usize) {
        self.eval_samples = samples.max(1);
    }

    /// The graph this session is bound to.
    pub fn graph(&self) -> &'g UncertainGraph {
        self.graph
    }

    /// The session's (immutable) configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The memory ledger every pool and cache of this session charges
    /// against (the caller-supplied one under
    /// [`UgraphSession::with_ledger`]).
    pub fn ledger(&self) -> &MemoryBudget {
        &self.budget
    }

    /// Solves one typed request against the session's shared state.
    ///
    /// The result is **bit-identical** to the corresponding one-shot call
    /// (`mcp`, `mcp_depth`, `acp`, `acp_depth`) with this session's
    /// configuration: the request is served over an active sample window
    /// holding exactly the worlds a fresh oracle would have drawn, while
    /// already-sampled worlds and cached rows are reused instead of
    /// recomputed ([`SolveResult::row_cache`] shows the reuse).
    ///
    /// Exception: with [`ClusterConfig::shared_pool`] enabled, the MCP and
    /// ACP families draw from one pool per depth shape — results are still
    /// deterministic for a fixed seed, but not bit-identical to the
    /// one-shot functions (which decorrelate the families' samples).
    ///
    /// # Errors
    /// The same failure modes as the one-shot entry points:
    /// [`ClusterError::KOutOfRange`], [`ClusterError::NoFullClustering`]
    /// (MCP on graphs with more than `k` components), and
    /// [`ClusterError::Sampling`] (e.g. `d_select > d_cover`, or an
    /// injected fault). With a deadline or cancellation token attached
    /// (on the config or the request), an interruption surfaces as
    /// [`ClusterError::DeadlineExceeded`] / [`ClusterError::Cancelled`] —
    /// or, under [`DegradeMode::BestEffort`](crate::config::DegradeMode),
    /// as a best-effort result with [`SolveResult::interrupt`] set. Every
    /// error leaves the session consistent: pools hold only fully
    /// generated shards, caches only complete rows, and re-issuing the
    /// same request completes bit-identically to an undisturbed run.
    pub fn solve(&mut self, request: ClusterRequest) -> Result<SolveResult, ClusterError> {
        let t0 = Instant::now();
        self.requests += 1;
        let label = request.to_string();
        let key = OracleKey {
            objective: (!self.config.shared_pool).then(|| request.objective()),
            depths: request.resolved_depths(&self.config),
        };
        let idx = self.oracle_index(key)?;
        let config = self.config.clone();
        // Every solve gets a fresh interruption state (a recorded
        // interruption is sticky for the state's lifetime), armed with the
        // merged session + request budget.
        let run = RunState::new(config.run_budget(&request));
        let mem_before = self.budget.stats();
        let oracle = &mut self.oracles[idx].1;
        let cache_before = oracle.cache_stats();
        let engine_before = oracle.engine_stats();
        oracle.begin_request();
        oracle.set_run_state(run);
        let result = match request.objective() {
            Objective::MinProb => {
                let r = mcp_with_oracle(oracle.as_mut(), request.k(), &config)?;
                SolveResult {
                    request,
                    clustering: r.clustering,
                    assign_probs: r.assign_probs,
                    objective_estimate: r.min_prob_estimate,
                    final_q: r.final_q,
                    guesses: r.guesses,
                    samples_used: r.samples_used,
                    row_cache: r.row_cache.since(cache_before),
                    engine: r.engine.since(engine_before),
                    elapsed: t0.elapsed(),
                    interrupt: r.interrupt,
                }
            }
            Objective::AvgProb => {
                let r = acp_with_oracle(oracle.as_mut(), request.k(), &config)?;
                SolveResult {
                    request,
                    clustering: r.clustering,
                    assign_probs: r.assign_probs,
                    objective_estimate: r.avg_prob_estimate,
                    final_q: r.final_q,
                    guesses: r.guesses,
                    samples_used: r.samples_used,
                    row_cache: r.row_cache.since(cache_before),
                    engine: r.engine.since(engine_before),
                    elapsed: t0.elapsed(),
                    interrupt: r.interrupt,
                }
            }
        };
        self.solve_time += result.elapsed;
        self.per_request.push(RequestRecord {
            label,
            samples_used: result.samples_used,
            guesses: result.guesses,
            row_cache: result.row_cache,
            engine: result.engine,
            memory: self.budget.stats().since(&mem_before),
            elapsed: result.elapsed,
        });
        Ok(result)
    }

    /// Estimates `p_min`/`p_avg` of `clustering` over the session's
    /// evaluation pool (built lazily, grow-only, seeded independently of
    /// every solver pool). Centers are fetched through the engine's
    /// batched multi-center queries.
    ///
    /// Probabilities count paths of **unlimited** length; when measuring
    /// the output of a depth-limited request, use
    /// [`UgraphSession::evaluate_depth`] so the quality is computed under
    /// the same §3.4 semantics as the objective.
    ///
    /// # Panics
    /// Panics if `clustering` is sized for a different graph.
    pub fn evaluate(&mut self, clustering: &Clustering) -> EvalQuality {
        let n = self.graph.num_nodes();
        assert_eq!(n, clustering.num_nodes(), "clustering and session disagree on n");
        self.evaluations += 1;
        let pool = self.eval_pool_impl();
        let samples = pool.num_samples();
        let probs = assignment_probs(
            pool,
            clustering.centers(),
            |u| clustering.cluster_of(NodeId::from_index(u)),
            None,
        );
        let (p_min, p_avg) =
            quality_from_probs(&probs, |u| clustering.cluster_of(NodeId::from_index(u)).is_some());
        EvalQuality { p_min, p_avg, samples }
    }

    /// Depth-limited [`UgraphSession::evaluate`]: probabilities count only
    /// paths of length ≤ `depth` (paper §3.4), over a lazily built
    /// depth-capable evaluation pool drawing the **same worlds** as the
    /// unlimited one (shared seed stream), so the two variants differ only
    /// in path semantics, never in sampling noise.
    ///
    /// # Panics
    /// Panics if `clustering` is sized for a different graph.
    pub fn evaluate_depth(&mut self, clustering: &Clustering, depth: u32) -> EvalQuality {
        let n = self.graph.num_nodes();
        assert_eq!(n, clustering.num_nodes(), "clustering and session disagree on n");
        self.evaluations += 1;
        let pool = self.eval_depth.get_or_insert_with(|| {
            let mut p = WorldPool::new(
                self.graph,
                mix_seed(self.config.seed, TAG_EVAL),
                self.config.threads,
            );
            p.set_memory_budget(self.budget.clone());
            p
        });
        pool.ensure(self.eval_samples);
        let samples = pool.num_samples();
        let probs = assignment_probs(
            pool,
            clustering.centers(),
            |u| clustering.cluster_of(NodeId::from_index(u)),
            Some(depth),
        );
        let (p_min, p_avg) =
            quality_from_probs(&probs, |u| clustering.cluster_of(NodeId::from_index(u)).is_some());
        EvalQuality { p_min, p_avg, samples }
    }

    /// The session's evaluation pool, built and grown on first use — hand
    /// this to the `ugraph-metrics` quality functions
    /// (`clustering_quality`, `avpr`, …) so they share the session's
    /// samples instead of building their own pool.
    pub fn eval_pool(&mut self) -> &mut ComponentPool<'g> {
        self.eval_pool_impl()
    }

    fn eval_pool_impl(&mut self) -> &mut ComponentPool<'g> {
        let pool = self.eval.get_or_insert_with(|| {
            let mut p = ComponentPool::new(
                self.graph,
                mix_seed(self.config.seed, TAG_EVAL),
                self.config.threads,
            );
            p.set_memory_budget(self.budget.clone());
            p
        });
        pool.ensure(self.eval_samples);
        pool
    }

    /// Cumulative statistics: requests and evaluations served, worlds held
    /// across all pools, aggregate row-cache service, and per-request
    /// records.
    pub fn stats(&self) -> SessionStats {
        let mut row_cache = RowCacheStats::default();
        let mut engine = EngineStats::default();
        let mut worlds = 0usize;
        for (_, oracle) in &self.oracles {
            row_cache = row_cache.merged(oracle.cache_stats());
            engine = engine.merged(oracle.engine_stats());
            worlds += oracle.pool_samples();
        }
        worlds += self.eval.as_ref().map_or(0, |p| p.num_samples());
        worlds += self.eval_depth.as_ref().map_or(0, |p| p.num_samples());
        let memory = self.budget.stats();
        SessionStats {
            requests: self.requests,
            evaluations: self.evaluations,
            worlds_held: worlds,
            row_cache,
            engine,
            solver_pools: self.oracles.len(),
            bytes_held: memory.bytes_held,
            shards_evicted: memory.shards_evicted,
            shards_regenerated: memory.shards_regenerated,
            solve_time: self.solve_time,
            per_request: self.per_request.clone(),
        }
    }

    /// Returns the index of the oracle serving `key`, constructing it on
    /// first use with the same seeds, engine backend, and row-cache
    /// setting the one-shot entry points use.
    fn oracle_index(&mut self, key: OracleKey) -> Result<usize, ClusterError> {
        if let Some(i) = self.oracles.iter().position(|(k, _)| *k == key) {
            return Ok(i);
        }
        let cfg = &self.config;
        // Shared-pool mode (`objective == None`) uses one dedicated tag per
        // depth shape; per-family mode reproduces the one-shot tags so
        // session requests stay bit-identical to the free functions.
        let tag = match (key.objective, key.depths.is_some()) {
            (None, false) => TAG_SHARED,
            (None, true) => TAG_SHARED_DEPTH,
            (Some(Objective::MinProb), false) => TAG_MCP,
            (Some(Objective::MinProb), true) => TAG_MCP_DEPTH,
            (Some(Objective::AvgProb), false) => TAG_ACP,
            (Some(Objective::AvgProb), true) => TAG_ACP_DEPTH,
        };
        let oracle: Box<dyn Oracle + 'g> = match key.depths {
            None => Box::new(
                McOracle::with_engine_width(
                    self.graph,
                    mix_seed(cfg.seed, tag),
                    cfg.threads,
                    cfg.schedule,
                    cfg.epsilon,
                    cfg.engine,
                    cfg.block_width,
                )
                .with_row_cache(cfg.row_cache)
                .with_memory_budget(self.budget.clone()),
            ),
            Some((d_select, d_cover)) => Box::new(
                DepthMcOracle::with_engine_width(
                    self.graph,
                    mix_seed(cfg.seed, tag),
                    cfg.threads,
                    cfg.schedule,
                    cfg.epsilon,
                    d_select,
                    d_cover,
                    cfg.engine,
                    cfg.block_width,
                )?
                .with_row_cache(cfg.row_cache)
                .with_memory_budget(self.budget.clone()),
            ),
        };
        self.oracles.push((key, oracle));
        Ok(self.oracles.len() - 1)
    }
}

impl fmt::Debug for UgraphSession<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UgraphSession")
            .field("nodes", &self.graph.num_nodes())
            .field("oracles", &self.oracles.len())
            .field("requests", &self.requests)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_graph::GraphBuilder;

    fn two_communities() -> UncertainGraph {
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(u, v, 0.9).unwrap();
        }
        b.add_edge(2, 3, 0.2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn session_reuses_one_oracle_per_shape() {
        let g = two_communities();
        let mut s = UgraphSession::new(&g, ClusterConfig::default().with_seed(5)).unwrap();
        s.solve(ClusterRequest::mcp(2)).unwrap();
        s.solve(ClusterRequest::mcp(3)).unwrap();
        assert_eq!(s.oracles.len(), 1, "same shape shares one oracle");
        s.solve(ClusterRequest::acp(2)).unwrap();
        s.solve(ClusterRequest::mcp_depth(2, 3)).unwrap();
        assert_eq!(s.oracles.len(), 3, "each shape gets its own oracle");
        let stats = s.stats();
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.per_request.len(), 4);
        assert_eq!(stats.per_request[0].label, "mcp(k=2)");
        assert!(stats.worlds_held > 0);
        assert!(stats.solve_time > Duration::ZERO);
        // The k = 3 request re-requested overlapping center rows: reuse
        // must be visible.
        assert!(stats.row_cache.hits + stats.row_cache.topups > 0, "{stats}");
    }

    #[test]
    fn session_errors_match_one_shot_errors() {
        let g = two_communities();
        let mut s = UgraphSession::new(&g, ClusterConfig::default()).unwrap();
        assert!(matches!(s.solve(ClusterRequest::mcp(0)), Err(ClusterError::KOutOfRange { .. })));
        assert!(matches!(s.solve(ClusterRequest::mcp(6)), Err(ClusterError::KOutOfRange { .. })));
        // d_select > d_cover is rejected at oracle construction, with the
        // sampling-layer source preserved.
        assert!(matches!(
            s.solve(ClusterRequest::mcp(2).with_depths(4, 2)),
            Err(ClusterError::Sampling(ugraph_sampling::SamplingError::InvalidDepths { .. }))
        ));
        assert!(UgraphSession::new(&g, ClusterConfig::default().with_gamma(0.0)).is_err());
    }

    #[test]
    fn evaluate_uses_a_grow_only_decorrelated_pool() {
        let g = two_communities();
        let mut s = UgraphSession::new(&g, ClusterConfig::default().with_seed(3))
            .unwrap()
            .with_eval_samples(64);
        let r = s.solve(ClusterRequest::mcp(2)).unwrap();
        let q1 = s.evaluate(&r.clustering);
        assert_eq!(q1.samples, 64);
        assert!(q1.p_min > 0.5, "two strong triangles: {q1:?}");
        assert!(q1.p_avg >= q1.p_min);
        s.set_eval_samples(128);
        let q2 = s.evaluate(&r.clustering);
        assert_eq!(q2.samples, 128);
        // Lowering never shrinks the pool.
        s.set_eval_samples(32);
        assert_eq!(s.evaluate(&r.clustering).samples, 128);
        assert_eq!(s.stats().evaluations, 3);
    }

    #[test]
    fn depth_evaluation_respects_path_semantics() {
        // Certain 5-path, one cluster centered at node 0: unlimited
        // evaluation sees everything connected (p_min = 1), depth-2 sees
        // nodes 3+ hops away as unreachable (p_min = 0).
        let mut b = GraphBuilder::new(5);
        for i in 0..4 {
            b.add_edge(i, i + 1, 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let mut s = UgraphSession::new(&g, ClusterConfig::default()).unwrap().with_eval_samples(8);
        let c = crate::Clustering::new(
            vec![ugraph_graph::NodeId(0)],
            vec![Some(0), Some(0), Some(0), Some(0), Some(0)],
        );
        let unlimited = s.evaluate(&c);
        assert_eq!(unlimited.p_min, 1.0);
        let depth2 = s.evaluate_depth(&c, 2);
        assert_eq!(depth2.p_min, 0.0);
        assert!((depth2.p_avg - 3.0 / 5.0).abs() < 1e-12);
        let depth4 = s.evaluate_depth(&c, 4);
        assert_eq!(depth4.p_min, 1.0);
        // Both eval pools count toward worlds held, and all calls count as
        // evaluations.
        assert_eq!(s.stats().evaluations, 3);
        assert_eq!(s.stats().worlds_held, 16);
    }

    #[test]
    fn budgeted_session_is_bit_identical_and_stays_under_the_limit() {
        let g = two_communities();
        let cfg = ClusterConfig::default().with_seed(9);
        let mut free = UgraphSession::new(&g, cfg.clone()).unwrap().with_eval_samples(64);
        // A 4 KiB ceiling is far below what the solver pools want on even
        // this tiny instance, forcing evict-and-regenerate cycles.
        let mut tight =
            UgraphSession::new(&g, cfg.with_memory_budget(4 << 10)).unwrap().with_eval_samples(64);
        for k in [2usize, 3] {
            let a = free.solve(ClusterRequest::mcp(k)).unwrap();
            let b = tight.solve(ClusterRequest::mcp(k)).unwrap();
            assert_eq!(a.clustering, b.clustering, "k={k}: budget changed the clustering");
            assert_eq!(a.objective_estimate, b.objective_estimate);
            assert_eq!(a.assign_probs, b.assign_probs);
        }
        let ca = free.solve(ClusterRequest::acp(2)).unwrap().clustering;
        let cb = tight.solve(ClusterRequest::acp(2)).unwrap().clustering;
        let qa = free.evaluate(&ca);
        let qb = tight.evaluate(&cb);
        assert_eq!(qa, qb, "evaluation must be budget-independent too");
        let stats = tight.stats();
        assert!(stats.shards_evicted > 0, "tight budget must evict: {stats}");
        assert!(stats.shards_regenerated > 0, "requeried shards must regenerate: {stats}");
        assert!(
            stats.bytes_held <= 4 << 10,
            "ledger over budget at rest: {} > {}",
            stats.bytes_held,
            4 << 10
        );
        assert!(stats.per_request.last().unwrap().memory.shards_regenerated > 0);
        let free_stats = free.stats();
        assert_eq!(free_stats.shards_evicted, 0, "unbounded session never evicts");
        assert!(free_stats.bytes_held > 0, "ledger still accounts without a limit");
    }

    #[test]
    fn kv_line_is_stable_and_machine_readable() {
        let g = two_communities();
        let mut s = UgraphSession::new(&g, ClusterConfig::default().with_seed(5)).unwrap();
        s.solve(ClusterRequest::mcp(2)).unwrap();
        let line = s.stats().kv_line();
        assert_eq!(line.lines().count(), 1, "must be a single line: {line:?}");
        for key in [
            "requests=1",
            "evaluations=0",
            "solver_pools=1",
            "cache_hits=",
            "cache_topups=",
            "cache_fulls=",
            "finalized_blocks=",
            "label_queries=",
            "mask_queries=",
            "bytes_held=",
            "shards_evicted=0",
            "shards_regenerated=0",
            "solve_time_ms=",
        ] {
            assert!(line.contains(key), "missing {key} in {line:?}");
        }
        // Every token parses as key=value with an integer value.
        for token in line.split(' ') {
            let (k, v) = token.split_once('=').expect("token must be key=value");
            assert!(!k.is_empty());
            v.parse::<u128>().unwrap_or_else(|_| panic!("non-integer value in {token}"));
        }
        // The human Display is unchanged by the satellite: still the prose
        // form, not the kv form.
        let human = s.stats().to_string();
        assert!(human.contains("request(s)"), "{human}");
        assert!(!human.contains("requests="), "{human}");
    }

    #[test]
    fn with_ledger_shares_a_global_budget_across_sessions() {
        let g = two_communities();
        let cfg = ClusterConfig::default().with_seed(9);
        let global = ugraph_sampling::MemoryBudget::unbounded();
        let mut a = UgraphSession::with_ledger(&g, cfg.clone(), global.subledger(None)).unwrap();
        let mut b = UgraphSession::with_ledger(&g, cfg, global.subledger(None)).unwrap();
        a.solve(ClusterRequest::mcp(2)).unwrap();
        b.solve(ClusterRequest::acp(2)).unwrap();
        let (sa, sb) = (a.stats(), b.stats());
        assert!(sa.bytes_held > 0 && sb.bytes_held > 0);
        // The global ledger sees the sum of both sessions' charges.
        assert_eq!(global.bytes_held(), sa.bytes_held + sb.bytes_held);
        // Dropping a session releases its whole footprint globally.
        drop(a);
        assert_eq!(global.bytes_held(), sb.bytes_held);
    }

    #[test]
    fn eval_pool_is_shared_with_metrics_callers() {
        let g = two_communities();
        let mut s = UgraphSession::new(&g, ClusterConfig::default()).unwrap().with_eval_samples(40);
        let r = s.solve(ClusterRequest::acp(2)).unwrap();
        let q = s.evaluate(&r.clustering);
        // The pool handed out is the very pool evaluate() used.
        assert_eq!(s.eval_pool().num_samples(), q.samples);
    }
}
