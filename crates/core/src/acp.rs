//! The ACP driver — Algorithm 3 with Theorem 8's Monte-Carlo integration.
//!
//! ACP trades coverage against threshold: for progressively smaller
//! guesses `q`, it computes a maximal partial clustering (Lemma 4 bounds
//! its outliers by `t_q`, the best possible), completes it by attaching
//! outliers to their most-reliable centers, and keeps the completion with
//! the best average assignment probability `φ`. Lemma 3 guarantees some
//! `q` achieves `q·(n − t_q)/n ≥ p_opt-avg/H(n)`, which yields the
//! `(p_opt-avg/((1+γ)H(n)))³` bound of Theorem 4.
//!
//! Two invocation flavors are supported (see
//! [`AcpInvocation`]: Theorem 4's
//! `min-partial(G, k, q³, n, q)` and the paper's practical
//! `min-partial(G, k, q, 1, q)` (§5), which the authors found to offer a
//! better time/quality trade-off. One deliberate deviation from the
//! pseudocode: Algorithm 3 lowers `q` only on non-improving iterations,
//! re-running the same threshold after improvements; since each threshold
//! is deterministic given the seed, re-running cannot change the outcome
//! here, so every threshold is evaluated exactly once (the authors'
//! `q_i = max{1 − γ·2^i, p_L}` schedule does the same).

use rand::rngs::SmallRng;
use rand::SeedableRng;

use ugraph_graph::UncertainGraph;
use ugraph_sampling::rng::mix_seed;
use ugraph_sampling::{EngineStats, Oracle, RowCacheStats};

use crate::clustering::Clustering;
use crate::config::{AcpInvocation, ClusterConfig, DegradeMode, GuessStrategy};
use crate::error::{interrupted, ClusterError, InterruptReport};
use crate::min_partial::{min_partial_with, MinPartialParams, MinPartialWorkspace};
use crate::request::{ClusterRequest, SolveResult};
use crate::session::UgraphSession;

/// Output of the ACP driver.
#[derive(Clone, Debug)]
pub struct AcpResult {
    /// The full k-clustering (partial best completed by attaching outliers
    /// to their most-reliable centers).
    pub clustering: Clustering,
    /// Estimated connection probability of each node to its center in the
    /// completed clustering.
    pub assign_probs: Vec<f64>,
    /// The driver's `φ_best`: average assignment probability of the best
    /// **partial** clustering (outliers counted as 0, per Algorithm 3). The
    /// completed clustering's true average is at least this.
    pub avg_prob_estimate: f64,
    /// The threshold `q` that produced the returned clustering.
    pub final_q: f64,
    /// Number of `min-partial` invocations performed.
    pub guesses: usize,
    /// Monte-Carlo samples in the pool at termination (1 for exact oracles).
    pub samples_used: usize,
    /// How the oracle's row cache served the schedule's probability rows
    /// (all zero for oracles without a cache).
    pub row_cache: RowCacheStats,
    /// Lazy block-finalization counters of the backing engine (all zero
    /// unless the adaptive backend ran).
    pub engine: EngineStats,
    /// `Some` iff the run was interrupted mid-schedule and completed
    /// best-effort under [`DegradeMode::BestEffort`] (see
    /// [`crate::SolveResult::interrupt`]).
    pub interrupt: Option<InterruptReport>,
}

impl From<SolveResult> for AcpResult {
    /// Projects a session [`SolveResult`] onto the legacy ACP shape.
    fn from(r: SolveResult) -> AcpResult {
        AcpResult {
            clustering: r.clustering,
            assign_probs: r.assign_probs,
            avg_prob_estimate: r.objective_estimate,
            final_q: r.final_q,
            guesses: r.guesses,
            samples_used: r.samples_used,
            row_cache: r.row_cache,
            engine: r.engine,
            interrupt: r.interrupt,
        }
    }
}

/// Runs ACP on `graph` with Monte-Carlo estimation (unlimited path
/// length), on the backend selected by `cfg.engine`.
///
/// A thin wrapper over a single-request [`UgraphSession`] — workloads
/// issuing many requests on one graph should hold a session instead (see
/// [`crate::mcp()`](crate::mcp::mcp)).
pub fn acp(
    graph: &UncertainGraph,
    k: usize,
    cfg: &ClusterConfig,
) -> Result<AcpResult, ClusterError> {
    // One-shot calls ignore `shared_pool` (nothing to share in a
    // single-request session), preserving the per-family seed streams.
    let mut session = UgraphSession::new(graph, cfg.clone().with_shared_pool(false))?;
    session.solve(ClusterRequest::acp(k)).map(AcpResult::from)
}

/// Runs the depth-limited ACP variant (paper §3.4).
///
/// In `Theory` mode this is Theorem 6's
/// `min-partial-d(G, k, q³, n, q, d, ⌊d/3⌋)`: selection disks at depth
/// `⌊d/3⌋`, cover disks at depth `d`. In `Practical` mode both disks use
/// depth `d`, mirroring the practical unlimited invocation. A thin
/// wrapper over a single-request [`UgraphSession`].
pub fn acp_depth(
    graph: &UncertainGraph,
    k: usize,
    d: u32,
    cfg: &ClusterConfig,
) -> Result<AcpResult, ClusterError> {
    // One-shot calls ignore `shared_pool` (nothing to share in a
    // single-request session), preserving the per-family seed streams.
    let mut session = UgraphSession::new(graph, cfg.clone().with_shared_pool(false))?;
    session.solve(ClusterRequest::acp_depth(k, d)).map(AcpResult::from)
}

/// Runs ACP against an arbitrary [`Oracle`].
pub fn acp_with_oracle<O: Oracle + ?Sized>(
    oracle: &mut O,
    k: usize,
    cfg: &ClusterConfig,
) -> Result<AcpResult, ClusterError> {
    cfg.validate()?;
    let n = oracle.num_nodes();
    if k < 1 || k >= n {
        return Err(ClusterError::KOutOfRange { k, n });
    }
    let mut rng = SmallRng::seed_from_u64(mix_seed(cfg.seed, 0x6163_7001));
    let mut guesses = 0usize;
    // Shared across all guesses, like the oracle's row cache.
    let mut ws = MinPartialWorkspace::new(n);

    // One min-partial invocation at driver threshold `q`. The guess
    // counter only advances for invocations that ran to completion, so an
    // interruption reports the number of *completed* guesses.
    let mut invoke = |oracle: &mut O, q: f64, rng: &mut SmallRng, guesses: &mut usize| {
        let eps = oracle.epsilon();
        let params = match cfg.acp_invocation {
            AcpInvocation::Theory => {
                let q3 = q * q * q;
                oracle.prepare(q3)?;
                MinPartialParams { k, q: q3, alpha: usize::MAX, q_bar: q, epsilon: eps }
            }
            AcpInvocation::Practical => {
                oracle.prepare(q)?;
                MinPartialParams { k, q, alpha: cfg.alpha, q_bar: q, epsilon: eps }
            }
        };
        let pc = min_partial_with(oracle, &params, rng, &mut ws)?;
        *guesses += 1;
        Ok(pc)
    };
    // The largest φ a threshold-q clustering is *guaranteed* to reach; the
    // loop stops once it falls below the best φ seen (Algorithm 3 line 5).
    let potential = |q: f64| match cfg.acp_invocation {
        AcpInvocation::Theory => q * q * q,
        AcpInvocation::Practical => q,
    };

    // Line 1-3: initial run at q = 1. With no clustering in hand yet,
    // interruptions always surface as typed errors (BestEffort included).
    let first = match invoke(oracle, 1.0, &mut rng, &mut guesses) {
        Ok(pc) => pc,
        Err(e) => return Err(interrupted(e, oracle.num_samples(), guesses)),
    };
    let mut phi_best = first.phi();
    let mut best = first;
    let mut best_q = 1.0f64;
    let mut interrupt = None;

    // Guessing loop (lines 4-13).
    let mut next_q: Box<dyn FnMut() -> f64> = match cfg.guess {
        GuessStrategy::Geometric => {
            let gamma = cfg.gamma;
            let mut q = 1.0f64;
            Box::new(move || {
                q /= 1.0 + gamma;
                q
            })
        }
        GuessStrategy::Accelerated => {
            let gamma = cfg.gamma;
            let mut i = 0u32;
            Box::new(move || {
                let q = 1.0 - gamma * f64::from(2u32.saturating_pow(i));
                i += 1;
                q
            })
        }
    };

    loop {
        let q = next_q().max(cfg.p_l);
        if potential(q) < phi_best {
            break;
        }
        // The first run already produced a usable clustering, so under
        // BestEffort an interruption just ends the schedule early and the
        // best completion so far is returned; injected faults still
        // surface as errors.
        let pc = match invoke(oracle, q, &mut rng, &mut guesses) {
            Ok(pc) => pc,
            Err(e) => {
                let err = interrupted(e, oracle.num_samples(), guesses);
                match (cfg.degrade, err.interrupt_report().copied()) {
                    (DegradeMode::BestEffort, Some(report)) => {
                        interrupt = Some(report);
                        break;
                    }
                    _ => return Err(err),
                }
            }
        };
        let phi = pc.phi();
        if phi >= phi_best {
            phi_best = phi;
            best = pc;
            best_q = q;
        }
        if q <= cfg.p_l {
            break;
        }
    }

    let (clustering, assign_probs) = best.complete();
    Ok(AcpResult {
        clustering,
        assign_probs,
        avg_prob_estimate: phi_best,
        final_q: best_q,
        guesses,
        samples_used: oracle.num_samples(),
        row_cache: oracle.cache_stats(),
        engine: oracle.engine_stats(),
        interrupt,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_graph::{GraphBuilder, NodeId};
    use ugraph_sampling::{ExactOracle, ExactOracleAdapter, SampleSchedule};

    fn two_communities(bridge: f64) -> UncertainGraph {
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(u, v, 0.9).unwrap();
        }
        b.add_edge(2, 3, bridge).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn splits_communities_exact_oracle() {
        let g = two_communities(0.05);
        let mut oracle = ExactOracleAdapter::new(ExactOracle::new(&g).unwrap());
        let r = acp_with_oracle(&mut oracle, 2, &ClusterConfig::default()).unwrap();
        assert!(r.clustering.is_full());
        let a = r.clustering.cluster_of(NodeId(0));
        assert_eq!(r.clustering.cluster_of(NodeId(2)), a);
        assert_ne!(r.clustering.cluster_of(NodeId(4)), a);
        assert!(r.avg_prob_estimate > 0.8, "φ = {}", r.avg_prob_estimate);
    }

    #[test]
    fn splits_communities_monte_carlo() {
        let g = two_communities(0.05);
        let cfg = ClusterConfig::default().with_seed(11);
        let r = acp(&g, 2, &cfg).unwrap();
        assert!(r.clustering.is_full());
        let a = r.clustering.cluster_of(NodeId(0));
        assert_eq!(r.clustering.cluster_of(NodeId(1)), a);
        assert_ne!(r.clustering.cluster_of(NodeId(5)), a);
    }

    #[test]
    fn theory_invocation_also_works() {
        let g = two_communities(0.05);
        let cfg = ClusterConfig::default()
            .with_acp_invocation(AcpInvocation::Theory)
            .with_seed(5)
            .with_schedule(SampleSchedule::Fixed(400));
        let r = acp(&g, 2, &cfg).unwrap();
        assert!(r.clustering.is_full());
        assert!(r.avg_prob_estimate > 0.5);
    }

    #[test]
    fn always_returns_full_clustering_even_when_disconnected() {
        // 3 components but k = 2: ACP completes by arbitrary attachment
        // (unlike MCP, which must fail).
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(2, 3, 0.9).unwrap();
        b.add_edge(4, 5, 0.9).unwrap();
        let g = b.build().unwrap();
        let r = acp(&g, 2, &ClusterConfig::default()).unwrap();
        assert!(r.clustering.is_full());
        // Two of three pairs get a real center; φ ≈ 4/6 · 0.9-ish.
        assert!(r.avg_prob_estimate > 0.5);
    }

    #[test]
    fn k_out_of_range() {
        let g = two_communities(0.5);
        assert!(matches!(
            acp(&g, 0, &ClusterConfig::default()),
            Err(ClusterError::KOutOfRange { .. })
        ));
        assert!(matches!(
            acp(&g, 7, &ClusterConfig::default()),
            Err(ClusterError::KOutOfRange { .. })
        ));
    }

    #[test]
    fn reproducible_with_seed() {
        let g = two_communities(0.2);
        let cfg = ClusterConfig::default().with_seed(77);
        let r1 = acp(&g, 2, &cfg).unwrap();
        let r2 = acp(&g, 2, &cfg).unwrap();
        assert_eq!(r1.clustering, r2.clustering);
        assert_eq!(r1.avg_prob_estimate, r2.avg_prob_estimate);
    }

    #[test]
    fn row_cache_and_batching_do_not_change_results() {
        use ugraph_sampling::EngineKind;
        let g = two_communities(0.2);
        for engine in [EngineKind::Scalar, EngineKind::BitParallel] {
            for inv in [AcpInvocation::Practical, AcpInvocation::Theory] {
                let on = ClusterConfig::default()
                    .with_seed(13)
                    .with_engine(engine)
                    .with_acp_invocation(inv);
                let off = on.clone().with_row_cache(false);
                let a = acp(&g, 2, &on).unwrap();
                let b = acp(&g, 2, &off).unwrap();
                assert_eq!(a.clustering, b.clustering, "{engine:?} {inv:?}");
                assert_eq!(a.assign_probs, b.assign_probs, "{engine:?} {inv:?}");
                assert_eq!(a.avg_prob_estimate, b.avg_prob_estimate);
                assert_eq!(a.guesses, b.guesses);
                assert_eq!(a.row_cache.rows_served(), b.row_cache.rows_served());
                assert_eq!((b.row_cache.hits, b.row_cache.topups), (0, 0));
                if inv == AcpInvocation::Theory {
                    // α = n re-queries candidates across guesses: at least
                    // some rows must have been served from cache.
                    assert!(
                        a.row_cache.hits > 0,
                        "{engine:?} Theory: expected cached rows, got {:?}",
                        a.row_cache
                    );
                }
            }
        }
    }

    #[test]
    fn theorem4_bound_on_exact_oracle() {
        // avg-prob ≥ (p_opt-avg / ((1+γ)·H(n)))³ — loose, but must hold.
        let g = two_communities(0.3);
        let exact = ExactOracle::new(&g).unwrap();
        let opt = crate::brute::brute_force_opt(&exact, 2).unwrap();
        let mut oracle = ExactOracleAdapter::new(ExactOracle::new(&g).unwrap());
        let cfg = ClusterConfig::default().with_acp_invocation(AcpInvocation::Theory);
        let r = acp_with_oracle(&mut oracle, 2, &cfg).unwrap();
        let h6 = ugraph_sampling::harmonic(6);
        let bound = (opt.best_avg_prob / (1.1 * h6)).powi(3);
        // Evaluate the actual achieved average against the exact oracle.
        let achieved =
            crate::objectives::avg_prob(&mut ExactOracleAdapter::new(exact), &r.clustering)
                .unwrap();
        assert!(achieved >= bound - 1e-9, "avg {achieved} below bound {bound}");
    }

    #[test]
    fn depth_limited_acp_runs() {
        let mut b = GraphBuilder::new(7);
        for i in 0..6 {
            b.add_edge(i, i + 1, 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let r = acp_depth(&g, 2, 2, &ClusterConfig::default()).unwrap();
        assert!(r.clustering.is_full());
        // Depth-2 coverage of a 7-path with 2 centers misses at least one
        // node (2 centers × 5-node balls = 10 ≥ 7, so full φ can be 1 — but
        // with completion it is in (0, 1]).
        assert!(r.avg_prob_estimate > 0.0);
        let r_theory = acp_depth(
            &g,
            2,
            3,
            &ClusterConfig::default().with_acp_invocation(AcpInvocation::Theory),
        )
        .unwrap();
        assert!(r_theory.clustering.is_full());
    }

    #[test]
    fn phi_best_not_worse_than_first_guess() {
        let g = two_communities(0.4);
        let mut oracle = ExactOracleAdapter::new(ExactOracle::new(&g).unwrap());
        let cfg = ClusterConfig::default();
        let r = acp_with_oracle(&mut oracle, 2, &cfg).unwrap();
        // First guess is q=1, φ = covered/strong fraction; final φ_best must
        // be at least that (monotone tracking).
        assert!(r.avg_prob_estimate >= 0.0);
        assert!(r.final_q <= 1.0);
        assert!(r.guesses >= 1);
    }
}
