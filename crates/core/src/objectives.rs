//! The clustering objective functions of the paper (Eq. 1, 2, 7, 8),
//! evaluated against any [`Oracle`].
//!
//! These are reference implementations used for validation and small-scale
//! evaluation; the `ugraph-metrics` crate provides the batched versions
//! used by the experiment harness.

use ugraph_sampling::{Oracle, SamplingError};

use crate::clustering::Clustering;

/// `min-prob(C)` (Eq. 1): the minimum connection probability of a covered
/// node to its cluster center. Outliers are not accounted for (partial
/// clustering semantics, §3.1). Returns 1.0 for a clustering with no
/// covered nodes (empty minimum).
///
/// # Errors
/// Propagates oracle failures (cooperative interruptions, injected
/// faults) without committing anything.
pub fn min_prob<O: Oracle + ?Sized>(
    oracle: &mut O,
    clustering: &Clustering,
) -> Result<f64, SamplingError> {
    let mut min = 1.0f64;
    for u in 0..clustering.num_nodes() {
        let u = ugraph_graph::NodeId::from_index(u);
        if let Some(c) = clustering.center_of(u) {
            let p = if c == u { 1.0 } else { oracle.pair_prob(c, u)? };
            min = min.min(p);
        }
    }
    Ok(min)
}

/// `avg-prob(C)` (Eq. 2): the average over **all** nodes of the connection
/// probability to the assigned cluster center, with outliers contributing
/// zero. Returns 0.0 for an empty graph.
///
/// # Errors
/// See [`min_prob`].
pub fn avg_prob<O: Oracle + ?Sized>(
    oracle: &mut O,
    clustering: &Clustering,
) -> Result<f64, SamplingError> {
    let n = clustering.num_nodes();
    if n == 0 {
        return Ok(0.0);
    }
    let mut sum = 0.0f64;
    for u in 0..n {
        let u = ugraph_graph::NodeId::from_index(u);
        if let Some(c) = clustering.center_of(u) {
            sum += if c == u { 1.0 } else { oracle.pair_prob(c, u)? };
        }
    }
    Ok(sum / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::Clustering;
    use ugraph_graph::{GraphBuilder, NodeId};
    use ugraph_sampling::{ExactOracle, ExactOracleAdapter};

    /// Path 0 -0.8- 1 -0.5- 2, plus isolated node 3.
    fn setup() -> (ExactOracleAdapter, Clustering) {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.8).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        let g = b.build().unwrap();
        let oracle = ExactOracleAdapter::new(ExactOracle::new(&g).unwrap());
        // One cluster centered at 1 covering {0,1,2}; node 3 outlier.
        let clustering = Clustering::new(vec![NodeId(1)], vec![Some(0), Some(0), Some(0), None]);
        (oracle, clustering)
    }

    #[test]
    fn min_prob_takes_weakest_covered_link() {
        let (mut oracle, c) = setup();
        assert!((min_prob(&mut oracle, &c).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn avg_prob_counts_outliers_as_zero() {
        let (mut oracle, c) = setup();
        // (0.8 + 1.0 + 0.5 + 0.0) / 4
        assert!((avg_prob(&mut oracle, &c).unwrap() - 2.3 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn full_singleton_clustering_has_perfect_scores() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.1).unwrap();
        let g = b.build().unwrap();
        let mut oracle = ExactOracleAdapter::new(ExactOracle::new(&g).unwrap());
        let c = Clustering::new(vec![NodeId(0), NodeId(1)], vec![Some(0), Some(1)]);
        assert_eq!(min_prob(&mut oracle, &c).unwrap(), 1.0);
        assert_eq!(avg_prob(&mut oracle, &c).unwrap(), 1.0);
    }

    #[test]
    fn empty_clustering_edge_cases() {
        let c = Clustering::new(vec![], vec![]);
        let mut b = GraphBuilder::new(1);
        b.grow_to(1);
        let g = b.build().unwrap();
        let mut oracle = ExactOracleAdapter::new(ExactOracle::new(&g).unwrap());
        assert_eq!(avg_prob(&mut oracle, &c).unwrap(), 0.0);
        assert_eq!(min_prob(&mut oracle, &c).unwrap(), 1.0);
    }
}
