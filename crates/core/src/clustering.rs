//! Clustering and partial-clustering types.

use ugraph_graph::NodeId;

/// Sentinel for "not assigned to any cluster".
const UNASSIGNED: u32 = u32::MAX;

/// A (possibly partial) k-clustering: `k` distinguished **centers** plus an
/// assignment of nodes to clusters.
///
/// Invariants (checked by [`Clustering::validate`] and upheld by the
/// constructors):
/// * every center belongs to its own cluster;
/// * cluster indices in the assignment are `< k`;
/// * centers are distinct.
///
/// A *full* clustering assigns every node; a *partial* one leaves outliers
/// unassigned (paper §3.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Clustering {
    centers: Vec<NodeId>,
    /// Cluster index per node, `UNASSIGNED` for outliers.
    assignment: Vec<u32>,
}

impl Clustering {
    /// Builds a clustering from raw parts.
    ///
    /// # Panics
    /// Panics if the invariants are violated (use [`Clustering::validate`]
    /// after external mutation instead).
    pub fn new(centers: Vec<NodeId>, assignment: Vec<Option<u32>>) -> Self {
        Clustering::try_new(centers, assignment)
            .unwrap_or_else(|e| panic!("invalid clustering: {e}"))
    }

    /// Non-panicking [`Clustering::new`]: validates the parts and returns
    /// the violation instead of panicking — the constructor for data from
    /// untrusted sources (e.g. decoded wire payloads or files).
    ///
    /// # Errors
    /// A description of the first violated invariant (see
    /// [`Clustering::validate`]).
    pub fn try_new(centers: Vec<NodeId>, assignment: Vec<Option<u32>>) -> Result<Self, String> {
        let assignment: Vec<u32> =
            assignment.into_iter().map(|a| a.map_or(UNASSIGNED, |c| c)).collect();
        let c = Clustering { centers, assignment };
        c.validate()?;
        Ok(c)
    }

    /// Crate-internal constructor from the sentinel representation.
    pub(crate) fn from_raw(centers: Vec<NodeId>, assignment: Vec<u32>) -> Self {
        let c = Clustering { centers, assignment };
        debug_assert!(c.validate().is_ok(), "invalid clustering: {:?}", c.validate());
        c
    }

    /// Number of clusters `k`.
    #[inline]
    pub fn num_clusters(&self) -> usize {
        self.centers.len()
    }

    /// Number of nodes of the underlying graph.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.assignment.len()
    }

    /// The center of cluster `i`.
    #[inline]
    pub fn center(&self, i: usize) -> NodeId {
        self.centers[i]
    }

    /// All centers, indexed by cluster.
    #[inline]
    pub fn centers(&self) -> &[NodeId] {
        &self.centers
    }

    /// Cluster index of node `u`, or `None` if `u` is an outlier.
    #[inline]
    pub fn cluster_of(&self, u: NodeId) -> Option<usize> {
        let c = self.assignment[u.index()];
        (c != UNASSIGNED).then_some(c as usize)
    }

    /// Convenience accessor taking a bare `u32` node id.
    #[inline]
    pub fn cluster_of_u32(&self, u: u32) -> Option<usize> {
        self.cluster_of(NodeId(u))
    }

    /// The center node `u` is assigned to, or `None` for outliers.
    #[inline]
    pub fn center_of(&self, u: NodeId) -> Option<NodeId> {
        self.cluster_of(u).map(|c| self.centers[c])
    }

    /// Number of assigned (covered) nodes.
    pub fn covered_count(&self) -> usize {
        self.assignment.iter().filter(|&&a| a != UNASSIGNED).count()
    }

    /// `true` if every node is assigned.
    pub fn is_full(&self) -> bool {
        self.assignment.iter().all(|&a| a != UNASSIGNED)
    }

    /// The outlier nodes (unassigned), in increasing id order.
    pub fn outliers(&self) -> Vec<NodeId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == UNASSIGNED)
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }

    /// Materializes the clusters as member lists (members in increasing id
    /// order; outliers appear in no list).
    pub fn clusters(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.centers.len()];
        for (i, &a) in self.assignment.iter().enumerate() {
            if a != UNASSIGNED {
                out[a as usize].push(NodeId::from_index(i));
            }
        }
        out
    }

    /// Sizes of the clusters.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.centers.len()];
        for &a in &self.assignment {
            if a != UNASSIGNED {
                sizes[a as usize] += 1;
            }
        }
        sizes
    }

    /// Checks all invariants, returning a description of the first
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        let k = self.centers.len();
        let n = self.assignment.len();
        let mut seen = std::collections::HashSet::with_capacity(k);
        for (i, &c) in self.centers.iter().enumerate() {
            if c.index() >= n {
                return Err(format!("center {c:?} of cluster {i} out of bounds (n = {n})"));
            }
            if !seen.insert(c) {
                return Err(format!("duplicate center {c:?}"));
            }
            match self.assignment[c.index()] {
                a if a == UNASSIGNED => {
                    return Err(format!("center {c:?} of cluster {i} is unassigned"))
                }
                a if a as usize != i => {
                    return Err(format!("center {c:?} of cluster {i} assigned to cluster {a}"))
                }
                _ => {}
            }
        }
        for (u, &a) in self.assignment.iter().enumerate() {
            if a != UNASSIGNED && a as usize >= k {
                return Err(format!("node n{u} assigned to nonexistent cluster {a}"));
            }
        }
        Ok(())
    }
}

/// The result of [`crate::min_partial()`](crate::min_partial::min_partial): a partial clustering plus the
/// estimated connection probability of every node to its assigned center.
#[derive(Clone, Debug)]
pub struct PartialClustering {
    /// The clustering (outliers unassigned).
    pub clustering: Clustering,
    /// `assign_probs[u]` = estimated `Pr(u ~ center(u))` for covered nodes,
    /// 0.0 for outliers. This is the `p_C(u)` of Algorithm 3.
    pub assign_probs: Vec<f64>,
    /// Best estimated probability of each node to *any* center, and that
    /// center's cluster index — used to complete partial clusterings
    /// (uncovered nodes are attached to their most-reliable center).
    pub best_center: Vec<Option<u32>>,
    /// Probability matching `best_center` (0.0 where `best_center` is None).
    pub best_prob: Vec<f64>,
}

impl PartialClustering {
    /// Average of `assign_probs` over **all** nodes (outliers contribute 0):
    /// the `φ` of Algorithm 3 line 7.
    pub fn phi(&self) -> f64 {
        if self.assign_probs.is_empty() {
            return 0.0;
        }
        self.assign_probs.iter().sum::<f64>() / self.assign_probs.len() as f64
    }

    /// Minimum of `assign_probs` over covered nodes (`None` if nothing is
    /// covered).
    pub fn min_covered_prob(&self) -> Option<f64> {
        self.clustering
            .cluster_of_iter()
            .zip(&self.assign_probs)
            .filter(|((_, assigned), _)| *assigned)
            .map(|(_, &p)| p)
            .min_by(f64::total_cmp)
    }

    /// Completes the clustering: every outlier is assigned to its
    /// most-reliable center (falling back to cluster 0 when it was never
    /// observed connected to any center). Returns the full clustering and
    /// the per-node probabilities to the assigned centers.
    #[allow(clippy::needless_range_loop)] // parallel-array indexing
    pub fn complete(&self) -> (Clustering, Vec<f64>) {
        let mut assignment: Vec<u32> = Vec::with_capacity(self.clustering.num_nodes());
        let mut probs = self.assign_probs.clone();
        for u in 0..self.clustering.num_nodes() {
            let a = match self.clustering.cluster_of(NodeId::from_index(u)) {
                Some(c) => c as u32,
                None => match self.best_center[u] {
                    Some(c) => {
                        probs[u] = self.best_prob[u];
                        c
                    }
                    None => {
                        probs[u] = 0.0;
                        0
                    }
                },
            };
            assignment.push(a);
        }
        (Clustering::from_raw(self.clustering.centers().to_vec(), assignment), probs)
    }
}

impl Clustering {
    /// Internal iterator over `(node, is_assigned)` used by
    /// [`PartialClustering::min_covered_prob`].
    fn cluster_of_iter(&self) -> impl Iterator<Item = (NodeId, bool)> + '_ {
        self.assignment.iter().enumerate().map(|(i, &a)| (NodeId::from_index(i), a != UNASSIGNED))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Clustering {
        // 5 nodes, clusters {0,1} center 0 and {2,3} center 3; node 4 outlier.
        Clustering::new(vec![NodeId(0), NodeId(3)], vec![Some(0), Some(0), Some(1), Some(1), None])
    }

    #[test]
    fn accessors() {
        let c = sample();
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.num_nodes(), 5);
        assert_eq!(c.center(0), NodeId(0));
        assert_eq!(c.cluster_of(NodeId(2)), Some(1));
        assert_eq!(c.cluster_of(NodeId(4)), None);
        assert_eq!(c.center_of(NodeId(1)), Some(NodeId(0)));
        assert_eq!(c.center_of(NodeId(4)), None);
        assert_eq!(c.covered_count(), 4);
        assert!(!c.is_full());
        assert_eq!(c.outliers(), vec![NodeId(4)]);
        assert_eq!(c.cluster_sizes(), vec![2, 2]);
    }

    #[test]
    fn clusters_materialization() {
        let c = sample();
        let cl = c.clusters();
        assert_eq!(cl[0], vec![NodeId(0), NodeId(1)]);
        assert_eq!(cl[1], vec![NodeId(2), NodeId(3)]);
    }

    #[test]
    #[should_panic(expected = "invalid clustering")]
    fn center_must_be_in_own_cluster() {
        let _ = Clustering::new(
            vec![NodeId(0), NodeId(3)],
            vec![Some(1), Some(0), Some(1), Some(1), None],
        );
    }

    #[test]
    #[should_panic(expected = "invalid clustering")]
    fn center_must_be_assigned() {
        let _ = Clustering::new(vec![NodeId(0)], vec![None, Some(0)]);
    }

    #[test]
    #[should_panic(expected = "invalid clustering")]
    fn duplicate_centers_rejected() {
        let _ = Clustering::new(vec![NodeId(0), NodeId(0)], vec![Some(0), Some(1)]);
    }

    #[test]
    fn validate_catches_out_of_range_assignment() {
        let c = Clustering { centers: vec![NodeId(0)], assignment: vec![0, 5] };
        assert!(c.validate().is_err());
    }

    #[test]
    fn partial_phi_and_completion() {
        let clustering = sample();
        let pc = PartialClustering {
            clustering,
            assign_probs: vec![1.0, 0.8, 0.6, 1.0, 0.0],
            best_center: vec![Some(0), Some(0), Some(1), Some(1), Some(1)],
            best_prob: vec![1.0, 0.8, 0.6, 1.0, 0.3],
        };
        assert!((pc.phi() - (1.0 + 0.8 + 0.6 + 1.0) / 5.0).abs() < 1e-12);
        assert_eq!(pc.min_covered_prob(), Some(0.6));
        let (full, probs) = pc.complete();
        assert!(full.is_full());
        assert_eq!(full.cluster_of(NodeId(4)), Some(1));
        assert!((probs[4] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn completion_with_unknown_best_center_falls_back_to_zero() {
        let clustering = Clustering::new(vec![NodeId(0)], vec![Some(0), None]);
        let pc = PartialClustering {
            clustering,
            assign_probs: vec![1.0, 0.0],
            best_center: vec![Some(0), None],
            best_prob: vec![1.0, 0.0],
        };
        let (full, probs) = pc.complete();
        assert_eq!(full.cluster_of(NodeId(1)), Some(0));
        assert_eq!(probs[1], 0.0);
    }

    #[test]
    fn empty_partial_phi_is_zero() {
        let pc = PartialClustering {
            clustering: Clustering::from_raw(vec![], vec![]),
            assign_probs: vec![],
            best_center: vec![],
            best_prob: vec![],
        };
        assert_eq!(pc.phi(), 0.0);
        assert_eq!(pc.min_covered_prob(), None);
    }
}
