//! The constructive Set-Cover → MCP reduction of Theorem 2.
//!
//! The MCP *decision* problem — "is there a k-clustering with
//! `min-prob ≥ p̂`?" — is NP-hard even given a connection-probability
//! oracle. The proof reduces from Set Cover: given a universe
//! `U = {u_1, …, u_m}` and a family `S = {S_1, …, S_n}`, build the
//! uncertain graph with
//!
//! * one node per element and one node per set (`N = m + n` nodes total),
//! * an edge `(u, S)` whenever `u ∈ S`, and an edge `(S, S')` for every
//!   pair of sets,
//! * every edge with probability `1/N!`,
//!
//! Then a k-clustering with `min-prob ≥ 1/N!` exists **iff** a set cover of
//! size `k` exists: the edge probability is so small that multi-hop
//! connections are negligible against single edges, forcing every node to
//! sit next to its center.
//!
//! This module builds the gadget so tests can verify the equivalence on
//! small instances by brute force — executable evidence for the reduction's
//! correctness.

use ugraph_graph::{GraphBuilder, UncertainGraph};

/// A Set Cover instance: a universe `0..universe` and a family of subsets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SetCoverInstance {
    /// Universe size `m`; elements are `0..m`.
    pub universe: usize,
    /// The subsets, each a list of element indices `< universe`.
    pub sets: Vec<Vec<usize>>,
}

impl SetCoverInstance {
    /// `true` if some `k` of the sets cover the whole universe
    /// (brute force over all k-subsets — test-sized instances only).
    pub fn has_cover_of_size(&self, k: usize) -> bool {
        let n = self.sets.len();
        if k >= n {
            // All sets together are the best we can do.
            return self.union_covers(&(0..n).collect::<Vec<_>>());
        }
        if k == 0 {
            return self.universe == 0;
        }
        let mut comb: Vec<usize> = (0..k).collect();
        loop {
            if self.union_covers(&comb) {
                return true;
            }
            let mut i = k;
            loop {
                if i == 0 {
                    return false;
                }
                i -= 1;
                if comb[i] != i + n - k {
                    comb[i] += 1;
                    for j in i + 1..k {
                        comb[j] = comb[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }

    fn union_covers(&self, chosen: &[usize]) -> bool {
        let mut covered = vec![false; self.universe];
        for &s in chosen {
            for &e in &self.sets[s] {
                covered[e] = true;
            }
        }
        covered.iter().all(|&c| c)
    }

    /// `true` if every element belongs to at least one set (a necessary
    /// condition the reduction assumes; checkable in polynomial time).
    pub fn every_element_coverable(&self) -> bool {
        let mut covered = vec![false; self.universe];
        for s in &self.sets {
            for &e in s {
                covered[e] = true;
            }
        }
        covered.iter().all(|&c| c)
    }
}

/// Builds the Theorem 2 gadget. Returns the uncertain graph and the
/// decision threshold `p̂ = 1/N!` with `N = m + n`.
///
/// Node layout: element `i` is node `i`; set `j` is node `m + j`.
///
/// # Panics
/// Panics if an element index is out of range, or if `N > 170` (`1/N!`
/// underflows f64 — far beyond what the exhaustive verification can handle
/// anyway).
pub fn set_cover_to_mcp(inst: &SetCoverInstance) -> (UncertainGraph, f64) {
    let m = inst.universe;
    let n = inst.sets.len();
    let total = m + n;
    assert!(total <= 170, "N = {total} too large: 1/N! underflows f64");
    let p_hat = (1..=total as u64).fold(1.0f64, |acc, i| acc / i as f64);
    assert!(p_hat > 0.0);

    let mut b = GraphBuilder::new(total);
    for (j, set) in inst.sets.iter().enumerate() {
        let set_node = (m + j) as u32;
        for &e in set {
            assert!(e < m, "element {e} out of universe 0..{m}");
            b.add_edge(e as u32, set_node, p_hat)
                .unwrap_or_else(|e| unreachable!("gadget edge is valid by construction: {e}"));
        }
    }
    for j1 in 0..n {
        for j2 in (j1 + 1)..n {
            b.add_edge((m + j1) as u32, (m + j2) as u32, p_hat)
                .unwrap_or_else(|e| unreachable!("gadget edge is valid by construction: {e}"));
        }
    }
    let g = b.build().unwrap_or_else(|e| unreachable!("gadget build cannot fail: {e}"));
    (g, p_hat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_opt;
    use ugraph_sampling::ExactOracle;

    fn small_instance() -> SetCoverInstance {
        // U = {0,1,2}; S0 = {0,1}, S1 = {1,2}, S2 = {2}.
        SetCoverInstance { universe: 3, sets: vec![vec![0, 1], vec![1, 2], vec![2]] }
    }

    #[test]
    fn brute_force_cover_checks() {
        let inst = small_instance();
        assert!(inst.every_element_coverable());
        assert!(!inst.has_cover_of_size(1));
        assert!(inst.has_cover_of_size(2)); // S0 ∪ S1 = U
        assert!(inst.has_cover_of_size(3));
    }

    #[test]
    fn gadget_shape() {
        let inst = small_instance();
        let (g, p_hat) = set_cover_to_mcp(&inst);
        // N = 6 nodes; edges: |S0|+|S1|+|S2| = 5 element edges + C(3,2) = 3
        // set-set edges.
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 8);
        let expect = 1.0 / (720.0); // 6! = 720
        assert!((p_hat - expect).abs() < 1e-18);
        for &p in g.probs() {
            assert_eq!(p, p_hat);
        }
    }

    /// The reduction's forward direction, verified exhaustively: a cover of
    /// size k exists ⇒ the gadget admits a k-clustering with
    /// min-prob ≥ p̂; and conversely its absence forces min-prob < p̂.
    #[test]
    fn equivalence_on_small_instance() {
        let inst = small_instance();
        let (g, p_hat) = set_cover_to_mcp(&inst);
        let oracle = ExactOracle::new(&g).unwrap();
        for k in 1..=3usize {
            let opt = brute_force_opt(&oracle, k).unwrap();
            // Tolerance for float reassembly of p̂ from world probabilities.
            let has_clustering = opt.best_min_prob >= p_hat * (1.0 - 1e-9);
            let has_cover = inst.has_cover_of_size(k);
            assert_eq!(
                has_clustering, has_cover,
                "k={k}: clustering min-prob {} vs p̂ {p_hat}, cover {has_cover}",
                opt.best_min_prob
            );
        }
    }

    #[test]
    fn unsatisfiable_instance() {
        // Element 2 not coverable: reduction precondition fails.
        let inst = SetCoverInstance { universe: 3, sets: vec![vec![0], vec![1]] };
        assert!(!inst.every_element_coverable());
        assert!(!inst.has_cover_of_size(2));
    }

    #[test]
    fn singleton_universe() {
        let inst = SetCoverInstance { universe: 1, sets: vec![vec![0]] };
        assert!(inst.has_cover_of_size(1));
        let (g, p_hat) = set_cover_to_mcp(&inst);
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
        let oracle = ExactOracle::new(&g).unwrap();
        let opt = brute_force_opt(&oracle, 1).unwrap();
        assert!(opt.best_min_prob >= p_hat * (1.0 - 1e-9));
    }

    #[test]
    fn empty_cover_only_for_empty_universe() {
        let empty = SetCoverInstance { universe: 0, sets: vec![vec![]] };
        assert!(empty.has_cover_of_size(0));
        let nonempty = small_instance();
        assert!(!nonempty.has_cover_of_size(0));
    }
}
