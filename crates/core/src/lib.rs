//! # ugraph-cluster — clustering uncertain graphs with provable guarantees
//!
//! This crate is the primary contribution of *Clustering Uncertain Graphs*
//! (Ceccarello, Fantozzi, Pietracaprina, Pucci, Vandin — VLDB 2017):
//! approximation algorithms for partitioning the nodes of an uncertain
//! graph into `k` clusters around distinguished **centers** so as to
//! maximize
//!
//! * the **minimum** connection probability of any node to its cluster
//!   center (**MCP** — the k-center analogue, [`mcp()`](mcp::mcp)), or
//! * the **average** connection probability of the nodes to their cluster
//!   centers (**ACP** — the k-median analogue, [`acp()`](acp::acp)),
//!
//! where the connection probability `Pr(u ~ v)` is the probability that `u`
//! and `v` are connected in a random possible world. Both algorithms build
//! on the [`min_partial()`](min_partial::min_partial) primitive (Algorithm 1), which covers a maximal
//! set of nodes at a probability threshold `q`, embedded in geometric
//! guessing schedules over `q` (Algorithms 2 and 3). Depth-limited variants
//! ([`mcp_depth`], [`acp_depth`]) restrict the paths contributing to
//! connection probabilities to a maximum length `d` (paper §3.4,
//! Algorithm 4).
//!
//! Guarantees (with exact probabilities): MCP achieves minimum connection
//! probability `≥ p²_opt-min/(1+γ)` (Theorem 3); ACP achieves average
//! connection probability `≥ (p_opt-avg/((1+γ)H(n)))³` (Theorem 4). With
//! Monte-Carlo estimation the bounds degrade by a `(1−ε)` factor with high
//! probability (Theorems 7 and 8). The MCP *decision* problem is NP-hard
//! even given an oracle (Theorem 2); the [`hardness`] module contains the
//! constructive Set-Cover reduction used in that proof.
//!
//! ## Quickstart
//!
//! ```
//! use ugraph_graph::GraphBuilder;
//! use ugraph_cluster::{mcp, ClusterConfig};
//!
//! // Two reliable communities joined by one flaky edge.
//! let mut b = GraphBuilder::new(6);
//! for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
//!     b.add_edge(u, v, 0.9).unwrap();
//! }
//! b.add_edge(2, 3, 0.05).unwrap();
//! let g = b.build().unwrap();
//!
//! let result = mcp(&g, 2, &ClusterConfig::default()).unwrap();
//! let c = &result.clustering;
//! assert_eq!(c.num_clusters(), 2);
//! // The flaky bridge separates the two triangles.
//! assert_eq!(c.cluster_of_u32(0), c.cluster_of_u32(2));
//! assert_eq!(c.cluster_of_u32(3), c.cluster_of_u32(5));
//! assert_ne!(c.cluster_of_u32(0), c.cluster_of_u32(3));
//! ```
//!
//! Running several requests on one graph (a k-sweep, depth comparisons,
//! metric re-evaluation)? Hold a [`UgraphSession`] instead of calling the
//! free functions repeatedly: each `session.solve(ClusterRequest::mcp(k))`
//! is bit-identical to the matching one-shot call, but the sampled worlds
//! and cached probability rows carry over between requests.
//!
//! ```
//! use ugraph_graph::GraphBuilder;
//! use ugraph_cluster::{ClusterConfig, ClusterRequest, UgraphSession};
//!
//! let mut b = GraphBuilder::new(6);
//! for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
//!     b.add_edge(u, v, 0.9).unwrap();
//! }
//! b.add_edge(2, 3, 0.05).unwrap();
//! let g = b.build().unwrap();
//!
//! let mut session = UgraphSession::new(&g, ClusterConfig::default()).unwrap();
//! for k in 2..=4 {
//!     let r = session.solve(ClusterRequest::mcp(k)).unwrap();
//!     assert_eq!(r.clustering.num_clusters(), k);
//! }
//! assert_eq!(session.stats().requests, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as typed errors, not panics; tests,
// benches, and doctests (separate crates / cfg(test) builds) may unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod acp;
pub mod brute;
pub mod clustering;
pub mod config;
pub mod error;
pub mod handle;
pub mod hardness;
pub mod mcp;
pub mod min_partial;
pub mod objectives;
pub mod request;
pub mod session;

pub use acp::{acp, acp_depth, acp_with_oracle, AcpResult};
pub use clustering::{Clustering, PartialClustering};
pub use config::{AcpInvocation, ClusterConfig, DegradeMode, GuessStrategy};
pub use error::{ClusterError, InterruptReport};
pub use handle::SessionHandle;
pub use mcp::{mcp, mcp_depth, mcp_with_oracle, McpResult};
pub use min_partial::{min_partial, min_partial_with, MinPartialParams, MinPartialWorkspace};
pub use objectives::{avg_prob, min_prob};
pub use request::{ClusterRequest, Objective, SolveResult};
pub use session::{EvalQuality, RequestRecord, SessionStats, UgraphSession};
pub use ugraph_sampling::{
    CancelToken, EngineKind, Interrupt, RowCacheStats, SamplingError, SamplingPhase,
};
