//! Brute-force optimal clusterings on exhaustively-solvable instances.
//!
//! For a fixed set of centers, the optimal assignment for **both** the MCP
//! and ACP objectives attaches every node to its highest-probability center
//! (each node's contribution depends only on its own assignment), so the
//! optimum over all k-clusterings is the maximum over all
//! `C(n, k)` center subsets. This is exponential and exists purely to
//! validate the approximation guarantees (Theorems 3 and 4) in tests and to
//! compute `p_opt` on the tiny instances of the hardness reduction.

use ugraph_graph::NodeId;
use ugraph_sampling::ExactOracle;

/// The brute-forced optima for a given `k`.
#[derive(Clone, Debug)]
pub struct BruteForceOpt {
    /// `p_opt-min(k)`: the best achievable `min-prob` (Eq. 1).
    pub best_min_prob: f64,
    /// A center set attaining `best_min_prob`.
    pub best_min_centers: Vec<NodeId>,
    /// `p_opt-avg(k)`: the best achievable `avg-prob` (Eq. 2).
    pub best_avg_prob: f64,
    /// A center set attaining `best_avg_prob`.
    pub best_avg_centers: Vec<NodeId>,
}

/// Enumerates all k-subsets of centers and returns the exact optima.
/// Returns `None` when `k` is zero or exceeds the node count.
///
/// Cost: `C(n, k) · n · k` probability lookups — use only on tiny graphs.
pub fn brute_force_opt(oracle: &ExactOracle, k: usize) -> Option<BruteForceOpt> {
    let n = oracle.num_nodes();
    if k == 0 || k > n {
        return None;
    }
    let mut best_min = f64::NEG_INFINITY;
    let mut best_min_centers = Vec::new();
    let mut best_avg = f64::NEG_INFINITY;
    let mut best_avg_centers = Vec::new();

    // Lexicographic combination enumeration.
    let mut comb: Vec<usize> = (0..k).collect();
    loop {
        let (min_p, avg_p) = evaluate(oracle, &comb);
        if min_p > best_min {
            best_min = min_p;
            best_min_centers = comb.iter().map(|&i| NodeId::from_index(i)).collect();
        }
        if avg_p > best_avg {
            best_avg = avg_p;
            best_avg_centers = comb.iter().map(|&i| NodeId::from_index(i)).collect();
        }
        // Advance to the next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return Some(BruteForceOpt {
                    best_min_prob: best_min,
                    best_min_centers,
                    best_avg_prob: best_avg,
                    best_avg_centers,
                });
            }
            i -= 1;
            if comb[i] != i + n - k {
                comb[i] += 1;
                for j in i + 1..k {
                    comb[j] = comb[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// Objective values of the best assignment to the given centers.
fn evaluate(oracle: &ExactOracle, centers: &[usize]) -> (f64, f64) {
    let n = oracle.num_nodes();
    let mut min_p = 1.0f64;
    let mut sum_p = 0.0f64;
    for u in 0..n {
        let best = centers
            .iter()
            .map(|&c| oracle.pair_probability(NodeId::from_index(c), NodeId::from_index(u)))
            .fold(0.0f64, f64::max);
        min_p = min_p.min(best);
        sum_p += best;
    }
    (min_p, sum_p / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph_graph::GraphBuilder;

    fn two_communities(bridge: f64) -> ExactOracle {
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(u, v, 0.9).unwrap();
        }
        b.add_edge(2, 3, bridge).unwrap();
        ExactOracle::new(&b.build().unwrap()).unwrap()
    }

    #[test]
    fn k_edge_cases() {
        let oracle = two_communities(0.1);
        assert!(brute_force_opt(&oracle, 0).is_none());
        assert!(brute_force_opt(&oracle, 7).is_none());
        assert!(brute_force_opt(&oracle, 6).is_some());
    }

    #[test]
    fn k_equals_n_is_perfect() {
        let oracle = two_communities(0.1);
        let opt = brute_force_opt(&oracle, 6).unwrap();
        // Exact-oracle world probabilities accumulate tiny float error.
        assert!((opt.best_min_prob - 1.0).abs() < 1e-12);
        assert!((opt.best_avg_prob - 1.0).abs() < 1e-12);
    }

    #[test]
    fn k2_picks_one_center_per_community() {
        let oracle = two_communities(0.05);
        let opt = brute_force_opt(&oracle, 2).unwrap();
        // Optimal centers must straddle the bridge: one in {0,1,2}, one in
        // {3,4,5}.
        let sides: Vec<bool> = opt.best_min_centers.iter().map(|c| c.index() < 3).collect();
        assert_ne!(sides[0], sides[1], "centers {:?}", opt.best_min_centers);
        // Triangle with p = 0.9: Pr(u~v) for adjacent nodes is
        // 0.9 + 0.1·0.81 = 0.981.
        assert!(opt.best_min_prob > 0.9);
        assert!(opt.best_avg_prob >= opt.best_min_prob);
    }

    #[test]
    fn avg_at_least_min_always() {
        let oracle = two_communities(0.4);
        for k in 1..6 {
            let opt = brute_force_opt(&oracle, k).unwrap();
            assert!(
                opt.best_avg_prob >= opt.best_min_prob - 1e-12,
                "k={k}: avg {} < min {}",
                opt.best_avg_prob,
                opt.best_min_prob
            );
        }
    }

    #[test]
    fn opt_is_monotone_in_k() {
        let oracle = two_communities(0.2);
        let mut prev_min = 0.0;
        let mut prev_avg = 0.0;
        for k in 1..=6 {
            let opt = brute_force_opt(&oracle, k).unwrap();
            assert!(opt.best_min_prob >= prev_min - 1e-12, "min not monotone at k={k}");
            assert!(opt.best_avg_prob >= prev_avg - 1e-12, "avg not monotone at k={k}");
            prev_min = opt.best_min_prob;
            prev_avg = opt.best_avg_prob;
        }
    }
}
