//! Errors reported by the clustering algorithms.

use std::fmt;

/// Failure modes of the MCP/ACP drivers.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// `k` violates the paper's requirement `1 ≤ k < n`.
    KOutOfRange {
        /// The requested number of clusters.
        k: usize,
        /// The number of nodes.
        n: usize,
    },
    /// The probability threshold reached the floor `p_L` without producing
    /// a full k-clustering.
    ///
    /// This happens when the graph's topology has more than `k` connected
    /// components (then no full k-clustering with positive minimum
    /// connection probability exists), or when the optimum lies below the
    /// configured floor. Matches the paper's §4 contract: "if the algorithm
    /// does not find a clustering whose objective function is above the
    /// threshold, it terminates by reporting that no clustering could be
    /// found".
    NoFullClustering {
        /// The configured probability floor.
        floor: f64,
        /// Nodes left uncovered at the floor.
        uncovered: usize,
    },
    /// A configuration value is invalid (e.g. `γ ≤ 0`, `p_L ∉ (0, 1]`).
    InvalidConfig {
        /// Description of the offending parameter.
        message: String,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::KOutOfRange { k, n } => {
                write!(f, "k = {k} out of range: need 1 ≤ k < n = {n}")
            }
            ClusterError::NoFullClustering { floor, uncovered } => write!(
                f,
                "no full k-clustering found above the probability floor {floor} \
                 ({uncovered} nodes uncovered); the graph may have more than k components"
            ),
            ClusterError::InvalidConfig { message } => {
                write!(f, "invalid configuration: {message}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<ugraph_sampling::SamplingError> for ClusterError {
    /// Sampling-layer failures surfacing during oracle construction (e.g.
    /// invalid depth pairs) are configuration errors from the driver's
    /// point of view.
    fn from(e: ugraph_sampling::SamplingError) -> Self {
        ClusterError::InvalidConfig { message: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ClusterError::KOutOfRange { k: 9, n: 5 };
        assert!(e.to_string().contains("9") && e.to_string().contains("5"));

        let e = ClusterError::NoFullClustering { floor: 1e-4, uncovered: 3 };
        assert!(e.to_string().contains("0.0001"));

        let e = ClusterError::InvalidConfig { message: "gamma must be positive".into() };
        assert!(e.to_string().contains("gamma"));
    }
}
