//! Errors reported by the clustering algorithms.

use std::fmt;

use ugraph_sampling::{Interrupt, SamplingError, SamplingPhase};

/// How far an interrupted solve got before its deadline passed, its
/// [`CancelToken`](ugraph_sampling::CancelToken) fired, or an injected
/// fault stopped it — carried by [`ClusterError::DeadlineExceeded`] and
/// [`ClusterError::Cancelled`], and by
/// [`SolveResult::interrupt`](crate::SolveResult::interrupt) when the
/// session runs under [`DegradeMode::BestEffort`](crate::config::DegradeMode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterruptReport {
    /// What interrupted the solve.
    pub kind: Interrupt,
    /// The sampling stage the interruption was observed in.
    pub phase: SamplingPhase,
    /// Possible worlds fully sampled (and usable) when the solve stopped.
    pub worlds_sampled: usize,
    /// `min-partial` guesses that ran to completion before the stop.
    pub guesses_completed: usize,
}

impl fmt::Display for InterruptReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} during {} after {} guesses ({} worlds sampled)",
            self.kind, self.phase, self.guesses_completed, self.worlds_sampled
        )
    }
}

/// Failure modes of the MCP/ACP drivers.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// `k` violates the paper's requirement `1 ≤ k < n`.
    KOutOfRange {
        /// The requested number of clusters.
        k: usize,
        /// The number of nodes.
        n: usize,
    },
    /// The probability threshold reached the floor `p_L` without producing
    /// a full k-clustering.
    ///
    /// This happens when the graph's topology has more than `k` connected
    /// components (then no full k-clustering with positive minimum
    /// connection probability exists), or when the optimum lies below the
    /// configured floor. Matches the paper's §4 contract: "if the algorithm
    /// does not find a clustering whose objective function is above the
    /// threshold, it terminates by reporting that no clustering could be
    /// found".
    NoFullClustering {
        /// The configured probability floor.
        floor: f64,
        /// Nodes left uncovered at the floor.
        uncovered: usize,
    },
    /// A configuration value is invalid (e.g. `γ ≤ 0`, `p_L ∉ (0, 1]`).
    InvalidConfig {
        /// Description of the offending parameter.
        message: String,
    },
    /// The sampling layer failed (invalid depth pair, buffer mismatch, an
    /// injected fault, …). The source error is preserved — match on it or
    /// walk [`std::error::Error::source`] — instead of being flattened
    /// into a string.
    Sampling(
        /// The underlying sampling-layer error.
        SamplingError,
    ),
    /// The solve's wall-clock deadline passed (see
    /// [`ClusterRequest::with_deadline`](crate::ClusterRequest::with_deadline)
    /// and [`ClusterConfig::with_timeout`](crate::ClusterConfig::with_timeout)).
    /// The session survives: re-issuing the request completes
    /// bit-identically to an undisturbed run.
    DeadlineExceeded(
        /// How far the solve got.
        InterruptReport,
    ),
    /// A [`CancelToken`](ugraph_sampling::CancelToken) attached to the
    /// solve fired. The session survives, exactly as for
    /// [`ClusterError::DeadlineExceeded`].
    Cancelled(
        /// How far the solve got.
        InterruptReport,
    ),
    /// The session's worker thread is gone — its channel disconnected
    /// before (or instead of) replying, e.g. because the session was shut
    /// down, evicted, or its thread panicked. Reported by
    /// [`SessionHandle`](crate::SessionHandle); re-opening the session
    /// and re-issuing the request is the recovery path.
    SessionClosed,
}

impl ClusterError {
    /// The [`InterruptReport`] carried by the interruption variants
    /// (`None` for every other error).
    pub fn interrupt_report(&self) -> Option<&InterruptReport> {
        match self {
            ClusterError::DeadlineExceeded(r) | ClusterError::Cancelled(r) => Some(r),
            _ => None,
        }
    }
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::KOutOfRange { k, n } => {
                write!(f, "k = {k} out of range: need 1 ≤ k < n = {n}")
            }
            ClusterError::NoFullClustering { floor, uncovered } => write!(
                f,
                "no full k-clustering found above the probability floor {floor} \
                 ({uncovered} nodes uncovered); the graph may have more than k components"
            ),
            ClusterError::InvalidConfig { message } => {
                write!(f, "invalid configuration: {message}")
            }
            ClusterError::Sampling(e) => write!(f, "sampling failed: {e}"),
            ClusterError::DeadlineExceeded(report) => write!(f, "solve {report}"),
            ClusterError::Cancelled(report) => write!(f, "solve {report}"),
            ClusterError::SessionClosed => {
                write!(f, "session closed: its worker thread has shut down")
            }
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Sampling(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SamplingError> for ClusterError {
    /// Cooperative interruptions become the typed
    /// [`ClusterError::DeadlineExceeded`] / [`ClusterError::Cancelled`]
    /// variants (with a minimal report — the drivers enrich it with guess
    /// and world counts); everything else is wrapped as
    /// [`ClusterError::Sampling`] with the source preserved.
    fn from(e: SamplingError) -> Self {
        match e {
            SamplingError::Interrupted { kind, phase } => {
                let report =
                    InterruptReport { kind, phase, worlds_sampled: 0, guesses_completed: 0 };
                match kind {
                    Interrupt::DeadlineExceeded => ClusterError::DeadlineExceeded(report),
                    Interrupt::Cancelled => ClusterError::Cancelled(report),
                }
            }
            other => ClusterError::Sampling(other),
        }
    }
}

/// Maps a sampling-layer error into [`ClusterError`], enriching
/// interruptions with driver-side progress counters.
pub(crate) fn interrupted(
    e: SamplingError,
    worlds_sampled: usize,
    guesses_completed: usize,
) -> ClusterError {
    match ClusterError::from(e) {
        ClusterError::DeadlineExceeded(r) => ClusterError::DeadlineExceeded(InterruptReport {
            worlds_sampled,
            guesses_completed,
            ..r
        }),
        ClusterError::Cancelled(r) => {
            ClusterError::Cancelled(InterruptReport { worlds_sampled, guesses_completed, ..r })
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_messages() {
        let e = ClusterError::KOutOfRange { k: 9, n: 5 };
        assert!(e.to_string().contains("9") && e.to_string().contains("5"));

        let e = ClusterError::NoFullClustering { floor: 1e-4, uncovered: 3 };
        assert!(e.to_string().contains("0.0001"));

        let e = ClusterError::InvalidConfig { message: "gamma must be positive".into() };
        assert!(e.to_string().contains("gamma"));

        let report = InterruptReport {
            kind: Interrupt::DeadlineExceeded,
            phase: SamplingPhase::Sweep,
            worlds_sampled: 128,
            guesses_completed: 3,
        };
        let e = ClusterError::DeadlineExceeded(report);
        let s = e.to_string();
        assert!(s.contains("deadline exceeded") && s.contains("128") && s.contains("3 guesses"));
    }

    #[test]
    fn sampling_errors_keep_their_source() {
        let src = SamplingError::InvalidDepths { d_select: 4, d_cover: 2 };
        let e = ClusterError::from(src.clone());
        assert_eq!(e, ClusterError::Sampling(src.clone()));
        let chained = e.source().expect("Sampling must chain its source");
        assert_eq!(chained.to_string(), src.to_string());
        // Non-wrapping variants have no source.
        assert!(ClusterError::KOutOfRange { k: 2, n: 1 }.source().is_none());
    }

    #[test]
    fn interruptions_map_to_typed_variants() {
        let e = ClusterError::from(SamplingError::Interrupted {
            kind: Interrupt::Cancelled,
            phase: SamplingPhase::Generation,
        });
        match e {
            ClusterError::Cancelled(r) => {
                assert_eq!(r.kind, Interrupt::Cancelled);
                assert_eq!(r.phase, SamplingPhase::Generation);
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }

        let e = interrupted(
            SamplingError::Interrupted {
                kind: Interrupt::DeadlineExceeded,
                phase: SamplingPhase::Sweep,
            },
            64,
            2,
        );
        let r = e.interrupt_report().expect("typed interruption carries a report");
        assert_eq!((r.worlds_sampled, r.guesses_completed), (64, 2));
    }
}
