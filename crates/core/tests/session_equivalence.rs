//! Session-reuse equivalence suite: every request served by a warm
//! [`UgraphSession`] must be **bit-identical** to the corresponding
//! one-shot free-function call — same clustering, same assignment
//! probabilities, same guess trace, same sample counts — on both engine
//! backends, with the row cache on or off, across interleaved request
//! shapes and k-sweeps.

use proptest::prelude::*;
use ugraph_cluster::{
    acp, acp_depth, mcp, mcp_depth, AcpInvocation, ClusterConfig, ClusterRequest, EngineKind,
    SolveResult, UgraphSession,
};
use ugraph_graph::{GraphBuilder, UncertainGraph};

/// Two strong triangles bridged by a mid-probability edge, plus a tail —
/// connected, so MCP succeeds for small k.
fn communities_with_tail() -> UncertainGraph {
    let mut b = GraphBuilder::new(8);
    for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
        b.add_edge(u, v, 0.9).unwrap();
    }
    b.add_edge(2, 3, 0.4).unwrap();
    b.add_edge(5, 6, 0.7).unwrap();
    b.add_edge(6, 7, 0.8).unwrap();
    b.build().unwrap()
}

/// Asserts a session result equals the one-shot MCP-shaped result in every
/// algorithmic field (cache counters excluded: on a warm session they are
/// *supposed* to differ — rows arrive as hits instead of recomputes).
fn assert_mcp_identical(tag: &str, s: &SolveResult, r: &ugraph_cluster::McpResult) {
    assert_eq!(s.clustering, r.clustering, "{tag}: clustering differs");
    assert_eq!(s.assign_probs, r.assign_probs, "{tag}: assign_probs differ");
    assert_eq!(s.objective_estimate, r.min_prob_estimate, "{tag}: objective differs");
    assert_eq!(s.final_q, r.final_q, "{tag}: final_q differs");
    assert_eq!(s.guesses, r.guesses, "{tag}: guesses differ");
    assert_eq!(s.samples_used, r.samples_used, "{tag}: samples_used differ");
    assert_eq!(s.row_cache.rows_served(), r.row_cache.rows_served(), "{tag}: rows served differ");
}

fn assert_acp_identical(tag: &str, s: &SolveResult, r: &ugraph_cluster::AcpResult) {
    assert_eq!(s.clustering, r.clustering, "{tag}: clustering differs");
    assert_eq!(s.assign_probs, r.assign_probs, "{tag}: assign_probs differ");
    assert_eq!(s.objective_estimate, r.avg_prob_estimate, "{tag}: objective differs");
    assert_eq!(s.final_q, r.final_q, "{tag}: final_q differs");
    assert_eq!(s.guesses, r.guesses, "{tag}: guesses differ");
    assert_eq!(s.samples_used, r.samples_used, "{tag}: samples_used differ");
}

#[test]
fn interleaved_request_shapes_match_one_shot_on_both_engines() {
    let g = communities_with_tail();
    for engine in [EngineKind::Scalar, EngineKind::BitParallel, EngineKind::Adaptive] {
        for row_cache in [true, false] {
            let cfg = ClusterConfig::default()
                .with_seed(42)
                .with_engine(engine)
                .with_row_cache(row_cache);
            let mut session = UgraphSession::new(&g, cfg.clone()).unwrap();
            let tag = format!("{engine:?} cache={row_cache}");

            // mcp → acp → mcp_depth → mcp (again, warm) on ONE session.
            let s1 = session.solve(ClusterRequest::mcp(2)).unwrap();
            assert_mcp_identical(&format!("{tag} mcp#1"), &s1, &mcp(&g, 2, &cfg).unwrap());

            let s2 = session.solve(ClusterRequest::acp(3)).unwrap();
            assert_acp_identical(&format!("{tag} acp"), &s2, &acp(&g, 3, &cfg).unwrap());

            let s3 = session.solve(ClusterRequest::mcp_depth(3, 2)).unwrap();
            assert_mcp_identical(
                &format!("{tag} mcp_depth"),
                &s3,
                &mcp_depth(&g, 3, 2, &cfg).unwrap(),
            );

            // The warm repeat is the crucial one: its oracle pool has
            // grown past what a fresh run would sample, and its cache
            // holds rows from three earlier requests.
            let s4 = session.solve(ClusterRequest::mcp(2)).unwrap();
            assert_mcp_identical(&format!("{tag} mcp#2"), &s4, &mcp(&g, 2, &cfg).unwrap());

            let s5 = session.solve(ClusterRequest::acp_depth(2, 3)).unwrap();
            assert_acp_identical(
                &format!("{tag} acp_depth"),
                &s5,
                &acp_depth(&g, 2, 3, &cfg).unwrap(),
            );
        }
    }
}

#[test]
fn warm_k_sweep_equals_cold_calls() {
    let g = communities_with_tail();
    for engine in [EngineKind::Scalar, EngineKind::BitParallel, EngineKind::Adaptive] {
        let cfg = ClusterConfig::default().with_seed(7).with_engine(engine);
        let mut session = UgraphSession::new(&g, cfg.clone()).unwrap();
        for k in 2..=6 {
            let warm = session.solve(ClusterRequest::mcp(k)).unwrap();
            let cold = mcp(&g, k, &cfg).unwrap();
            assert_mcp_identical(&format!("{engine:?} k={k}"), &warm, &cold);
        }
        // The sweep must actually have exercised reuse (deterministic:
        // same centers recur across k).
        let stats = session.stats();
        assert!(
            stats.row_cache.hits + stats.row_cache.topups > 0,
            "{engine:?}: warm sweep served no cached rows: {stats}"
        );
        // One shared pool across the sweep, not one per k.
        assert!(
            stats.worlds_held <= stats.per_request.iter().map(|r| r.samples_used).sum(),
            "{engine:?}: session holds more worlds than the requests used combined"
        );
    }
}

#[test]
fn acp_theory_invocation_matches_one_shot_on_session() {
    // α = n re-queries candidates across guesses — the heaviest cache
    // workload; run it twice on one session to cross request boundaries.
    let g = communities_with_tail();
    let cfg = ClusterConfig::default()
        .with_seed(19)
        .with_acp_invocation(AcpInvocation::Theory)
        .with_alpha(4);
    let mut session = UgraphSession::new(&g, cfg.clone()).unwrap();
    for _ in 0..2 {
        let warm = session.solve(ClusterRequest::acp(2)).unwrap();
        assert_acp_identical("theory acp", &warm, &acp(&g, 2, &cfg).unwrap());
    }
}

#[test]
fn explicit_depths_match_depth_oracle_runs() {
    // with_depths(d, d) for MCP resolves to the same oracle shape as
    // mcp_depth(k, d) — the two request forms must join the same session
    // oracle and produce identical results.
    let g = communities_with_tail();
    let cfg = ClusterConfig::default().with_seed(23);
    let mut session = UgraphSession::new(&g, cfg.clone()).unwrap();
    let a = session.solve(ClusterRequest::mcp_depth(2, 3)).unwrap();
    let b = session.solve(ClusterRequest::mcp(2).with_depths(3, 3)).unwrap();
    assert_eq!(a.clustering, b.clustering);
    assert_eq!(a.assign_probs, b.assign_probs);
    assert_mcp_identical("explicit depths", &b, &mcp_depth(&g, 2, 3, &cfg).unwrap());
}

#[test]
fn adaptive_sessions_agree_with_scalar_sessions() {
    // The three backends must produce identical results through the full
    // session stack — including requests served warm from pools whose
    // blocks were finalized by earlier requests.
    let g = communities_with_tail();
    let run = |engine: EngineKind| {
        let cfg = ClusterConfig::default().with_seed(11).with_engine(engine);
        let mut session = UgraphSession::new(&g, cfg).unwrap();
        let results: Vec<SolveResult> = [
            ClusterRequest::mcp(2),
            ClusterRequest::acp(3),
            ClusterRequest::mcp(3),
            ClusterRequest::mcp(2),
        ]
        .into_iter()
        .map(|rq| session.solve(rq).unwrap())
        .collect();
        (results, session.stats())
    };
    let (scalar, _) = run(EngineKind::Scalar);
    let (mask, _) = run(EngineKind::BitParallel);
    let (adaptive, stats) = run(EngineKind::Adaptive);
    for ((s, m), a) in scalar.iter().zip(&mask).zip(&adaptive) {
        assert_eq!(s.clustering, a.clustering, "adaptive diverges from scalar");
        assert_eq!(s.assign_probs, a.assign_probs);
        assert_eq!(m.clustering, a.clustering, "adaptive diverges from pure-mask");
        assert_eq!((s.guesses, s.samples_used), (a.guesses, a.samples_used));
    }
    // The unlimited oracles actually finalized blocks and served label
    // queries; each lane was labeled at most once.
    assert!(stats.engine.finalized_blocks > 0, "no finalization happened: {stats}");
    assert!(stats.engine.label_queries > 0, "{stats}");
    assert!(stats.engine.finalized_lanes <= stats.worlds_held, "relabeling detected: {stats}");
}

#[test]
fn shared_pool_dedupes_worlds_across_oracle_families() {
    let g = communities_with_tail();
    let requests = [
        ClusterRequest::mcp(2),
        ClusterRequest::acp(2),
        ClusterRequest::mcp(3),
        ClusterRequest::acp(3),
    ];
    let run = |shared: bool| {
        let cfg = ClusterConfig::default().with_seed(31).with_shared_pool(shared);
        let mut session = UgraphSession::new(&g, cfg).unwrap();
        let results: Vec<SolveResult> =
            requests.iter().map(|rq| session.solve(rq.clone()).unwrap()).collect();
        (results, session.stats())
    };
    let (separate, separate_stats) = run(false);
    let (shared, shared_stats) = run(true);
    // One pool serves both families: the session holds one solver pool
    // instead of two, deduping the sampled worlds.
    assert_eq!(shared_stats.solver_pools, 1, "{shared_stats}");
    assert_eq!(separate_stats.solver_pools, 2, "{separate_stats}");
    assert!(
        shared_stats.worlds_held < separate_stats.worlds_held,
        "shared pool did not dedupe: {} vs {}",
        shared_stats.worlds_held,
        separate_stats.worlds_held
    );
    // Deterministic: a second shared session reproduces the results bit
    // for bit.
    let (shared2, _) = run(true);
    for (a, b) in shared.iter().zip(&shared2) {
        assert_eq!(a.clustering, b.clustering, "shared-pool session not deterministic");
        assert_eq!(a.assign_probs, b.assign_probs);
        assert_eq!((a.guesses, a.samples_used), (b.guesses, b.samples_used));
    }
    // Both modes return valid full clusterings of the requested size.
    for (a, b) in shared.iter().zip(&separate) {
        assert_eq!(a.clustering.num_clusters(), b.clustering.num_clusters());
        assert_eq!(a.clustering.covered_count(), b.clustering.covered_count());
    }
}

#[test]
fn one_shot_calls_ignore_the_shared_pool_knob() {
    // The knob only matters when requests can actually share: a one-shot
    // wrapper builds a single-request session, so `mcp`/`acp` must return
    // bit-identical results with the knob on or off (the documented
    // contract in `ClusterConfig::shared_pool`).
    let g = communities_with_tail();
    let plain = ClusterConfig::default().with_seed(17);
    let knob = plain.clone().with_shared_pool(true);
    let a = mcp(&g, 2, &plain).unwrap();
    let b = mcp(&g, 2, &knob).unwrap();
    assert_eq!(a.clustering, b.clustering);
    assert_eq!(a.assign_probs, b.assign_probs);
    assert_eq!((a.guesses, a.samples_used), (b.guesses, b.samples_used));
    let a = acp(&g, 2, &plain).unwrap();
    let b = acp(&g, 2, &knob).unwrap();
    assert_eq!(a.clustering, b.clustering);
    assert_eq!(a.assign_probs, b.assign_probs);
}

#[test]
fn shared_pool_keeps_depth_shapes_separate() {
    let g = communities_with_tail();
    let cfg = ClusterConfig::default().with_seed(13).with_shared_pool(true);
    let mut session = UgraphSession::new(&g, cfg).unwrap();
    session.solve(ClusterRequest::mcp(2)).unwrap();
    session.solve(ClusterRequest::acp(2)).unwrap();
    assert_eq!(session.stats().solver_pools, 1, "unlimited shapes share one pool");
    session.solve(ClusterRequest::mcp_depth(2, 3)).unwrap();
    session.solve(ClusterRequest::acp_depth(2, 3)).unwrap();
    // (3, 3) resolves identically for MCP and practical ACP → one depth
    // pool; the unlimited pool stays separate.
    assert_eq!(session.stats().solver_pools, 2, "depth shape gets its own shared pool");
}

/// Random small connected graphs for the property sweep.
fn small_graph() -> impl Strategy<Value = UncertainGraph> {
    (5..=9u32).prop_flat_map(|n| {
        let extra = proptest::collection::vec((0..n, 0..n, 0.15f64..=1.0), 0..8);
        (Just(n), extra, 0.4f64..=0.95).prop_map(|(n, extra, p_spine)| {
            let mut b = GraphBuilder::new(n as usize);
            for i in 0..n - 1 {
                b.add_edge(i, i + 1, p_spine).unwrap();
            }
            for (u, v, p) in extra {
                if u != v {
                    b.add_edge(u, v, p).unwrap();
                }
            }
            b.build().unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary (graph, seed, engine, request sequence): a warm session
    /// replays every request bit-identically to its cold counterpart.
    #[test]
    fn session_replay_is_bit_identical(
        g in small_graph(),
        seed in any::<u64>(),
        engine_pick in 0u8..3,
        ks in proptest::collection::vec(2usize..4, 2..5),
    ) {
        let engine = match engine_pick {
            0 => EngineKind::Scalar,
            1 => EngineKind::BitParallel,
            _ => EngineKind::Adaptive,
        };
        let cfg = ClusterConfig::default().with_seed(seed).with_engine(engine);
        let mut session = UgraphSession::new(&g, cfg.clone()).unwrap();
        for (i, &k) in ks.iter().enumerate() {
            prop_assume!(k < g.num_nodes());
            // Alternate objectives so oracles interleave within one session.
            if i % 2 == 0 {
                let warm = session.solve(ClusterRequest::mcp(k));
                let cold = mcp(&g, k, &cfg);
                match (warm, cold) {
                    (Ok(w), Ok(c)) => {
                        prop_assert_eq!(&w.clustering, &c.clustering);
                        prop_assert_eq!(&w.assign_probs, &c.assign_probs);
                        prop_assert_eq!(w.final_q, c.final_q);
                        prop_assert_eq!(w.guesses, c.guesses);
                        prop_assert_eq!(w.samples_used, c.samples_used);
                    }
                    (Err(we), Err(ce)) => prop_assert_eq!(we, ce),
                    (w, c) => prop_assert!(false, "warm {w:?} vs cold {c:?} diverge"),
                }
            } else {
                let warm = session.solve(ClusterRequest::acp(k)).unwrap();
                let cold = acp(&g, k, &cfg).unwrap();
                prop_assert_eq!(&warm.clustering, &cold.clustering);
                prop_assert_eq!(&warm.assign_probs, &cold.assign_probs);
                prop_assert_eq!(warm.objective_estimate, cold.avg_prob_estimate);
                prop_assert_eq!(warm.guesses, cold.guesses);
                prop_assert_eq!(warm.samples_used, cold.samples_used);
            }
        }
    }
}
