//! Robustness of the solver stack: cooperative cancellation, wall-clock
//! deadlines, best-effort degradation, and fault-injected recovery,
//! property-tested across all three engines and both drivers.
//!
//! The invariant under test everywhere is **no-poison**: a solve that is
//! interrupted or killed by an injected fault returns a typed error and
//! leaves the session fully usable — re-issuing the same request
//! completes bit-identically to a run that was never disturbed, and the
//! memory ledger holds exactly the bytes an undisturbed session holds.

use std::time::Duration;

use proptest::prelude::*;
use ugraph_cluster::{
    CancelToken, ClusterConfig, ClusterError, ClusterRequest, DegradeMode, EngineKind,
    SamplingError, SolveResult, UgraphSession,
};
use ugraph_graph::{GraphBuilder, UncertainGraph};
use ugraph_sampling::faults::{self, FaultPlan};
use ugraph_sampling::{FaultSite, SampleSchedule};

const ENGINES: [EngineKind; 3] =
    [EngineKind::Scalar, EngineKind::BitParallel, EngineKind::Adaptive];

/// Three reliable communities joined by weak bridges: full 3-clusterings
/// exist, and the drivers run a non-trivial guess schedule.
fn three_communities() -> UncertainGraph {
    let mut b = GraphBuilder::new(12);
    for base in [0u32, 4, 8] {
        for u in base..base + 4 {
            for v in u + 1..base + 4 {
                b.add_edge(u, v, 0.85).unwrap();
            }
        }
    }
    b.add_edge(3, 4, 0.05).unwrap();
    b.add_edge(7, 8, 0.05).unwrap();
    b.build().unwrap()
}

fn config(engine: EngineKind, seed: u64) -> ClusterConfig {
    ClusterConfig::default()
        .with_seed(seed)
        .with_threads(1)
        .with_engine(engine)
        .with_schedule(SampleSchedule::Fixed(192))
}

fn request(acp: bool, k: usize) -> ClusterRequest {
    if acp {
        ClusterRequest::acp(k)
    } else {
        ClusterRequest::mcp(k)
    }
}

fn assert_identical(got: &SolveResult, want: &SolveResult, what: &str) {
    assert_eq!(got.clustering, want.clustering, "{what}: clustering diverged");
    assert_eq!(got.assign_probs, want.assign_probs, "{what}: probabilities diverged");
    assert_eq!(
        (got.guesses, got.samples_used),
        (want.guesses, want.samples_used),
        "{what}: schedule diverged"
    );
    assert!(got.interrupt.is_none(), "{what}: undisturbed solve flagged as interrupted");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cancelling at an arbitrary checkpoint returns a typed
    /// [`ClusterError::Cancelled`] with a phase-stamped report (or
    /// completes untouched when the trip point lies past the last poll),
    /// and never poisons the session: the re-issued request is
    /// bit-identical to the undisturbed baseline.
    #[test]
    fn cancellation_at_any_checkpoint_never_poisons_the_session(
        engine_idx in 0usize..3,
        acp in any::<bool>(),
        checks in 1u64..400,
        seed in 1u64..1000,
    ) {
        let g = three_communities();
        let engine = ENGINES[engine_idx];
        let rq = request(acp, 3);

        let mut session = UgraphSession::new(&g, config(engine, seed)).unwrap();
        let baseline = session.solve(rq.clone()).unwrap();

        let cancelled =
            session.solve(rq.clone().with_cancel_token(CancelToken::after_checks(checks)));
        match cancelled {
            Err(ClusterError::Cancelled(report)) => {
                prop_assert!(
                    report.guesses_completed <= baseline.guesses,
                    "interrupted run reported more guesses than the full schedule"
                );
            }
            Ok(ref r) => assert_identical(r, &baseline, "untripped token"),
            Err(ref other) => prop_assert!(false, "expected Cancelled, got {other}"),
        }

        let again = session.solve(rq).unwrap();
        assert_identical(&again, &baseline, "re-issue after cancellation");
        // `requests` counts issued solves, successful or not; an
        // interrupted solve must still be accounted for exactly once.
        prop_assert_eq!(session.stats().requests, 3);
    }

    /// Failing shard generation, pool growth, or row-cache admission at
    /// an arbitrary hit yields a typed
    /// [`SamplingError::FaultInjected`] (never a panic, never a
    /// best-effort result), and once the plan is disarmed the same
    /// session recovers bit-identically to a never-faulted control.
    #[test]
    fn injected_faults_are_typed_and_recoverable(
        engine_idx in 0usize..3,
        acp in any::<bool>(),
        site_idx in 0usize..2,
        hit in 1u64..40,
        seed in 1u64..1000,
    ) {
        let g = three_communities();
        let engine = ENGINES[engine_idx];
        let site = [FaultSite::PoolGrow, FaultSite::BudgetAdmission][site_idx];
        let rq = request(acp, 3);

        let mut control = UgraphSession::new(&g, config(engine, seed)).unwrap();
        let baseline = control.solve(rq.clone()).unwrap();

        let mut session = UgraphSession::new(&g,
            config(engine, seed).with_degrade(DegradeMode::BestEffort)).unwrap();
        let guard = faults::install(FaultPlan::new().fail_at(site, hit));
        let faulted = session.solve(rq.clone());
        drop(guard);
        match faulted {
            Err(ClusterError::Sampling(SamplingError::FaultInjected { site: s, hit: h })) => {
                prop_assert_eq!(s, site);
                prop_assert_eq!(h, hit);
            }
            // The plan's trip point lay past the site's last hit.
            Ok(ref r) => assert_identical(r, &baseline, "untripped failpoint"),
            Err(other) => prop_assert!(false, "expected FaultInjected, got {other}"),
        }

        let recovered = session.solve(rq).unwrap();
        assert_identical(&recovered, &baseline, "re-issue after injected fault");
    }
}

/// A deadline that has already passed interrupts the very first
/// checkpoint with a typed report, at the config level and the request
/// level alike; dropping the deadline heals the session in place.
#[test]
fn expired_deadline_interrupts_and_session_heals() {
    let g = three_communities();
    for engine in ENGINES {
        let mut control = UgraphSession::new(&g, config(engine, 7)).unwrap();
        let baseline = control.solve(ClusterRequest::mcp(3)).unwrap();

        // Request-level deadline.
        let mut session = UgraphSession::new(&g, config(engine, 7)).unwrap();
        let err = session
            .solve(ClusterRequest::mcp(3).with_deadline(Duration::ZERO))
            .expect_err("zero deadline must interrupt");
        let report = err.interrupt_report().expect("interruption must carry a report");
        assert!(matches!(err, ClusterError::DeadlineExceeded(_)), "got {err}");
        assert_eq!(report.guesses_completed, 0, "nothing can complete under a zero deadline");
        let healed = session.solve(ClusterRequest::mcp(3)).unwrap();
        assert_identical(&healed, &baseline, "re-issue after request deadline");

        // Config-level deadline: every solve inherits it.
        let mut strict =
            UgraphSession::new(&g, config(engine, 7).with_timeout(Duration::ZERO)).unwrap();
        for _ in 0..2 {
            let err = strict.solve(ClusterRequest::mcp(3)).expect_err("config deadline");
            assert!(matches!(err, ClusterError::DeadlineExceeded(_)), "got {err}");
        }
        // `requests` counts issued solves whether or not they complete.
        assert_eq!(strict.stats().requests, 2);
        assert!(
            strict.stats().per_request.is_empty(),
            "failed solves must not leave per-request records"
        );
    }
}

/// An already-cancelled config-level token fails every solve with
/// [`ClusterError::Cancelled`]; the identical session without the token
/// is untouched.
#[test]
fn cancelled_config_token_fails_every_solve() {
    let g = three_communities();
    let token = CancelToken::new();
    token.cancel();
    let mut session =
        UgraphSession::new(&g, config(EngineKind::Adaptive, 7).with_cancel_token(token)).unwrap();
    for _ in 0..2 {
        let err = session.solve(ClusterRequest::acp(3)).expect_err("cancelled token");
        assert!(matches!(err, ClusterError::Cancelled(_)), "got {err}");
    }
}

/// Under [`DegradeMode::BestEffort`], sweeping the cancellation trip
/// point across the whole poll range partitions the outcomes into three
/// regimes — typed errors early (no full clustering in hand), flagged
/// partial results mid-schedule, clean completions past the last poll —
/// and every partial result is a *full* clustering with a progress
/// report, on a session that stays bit-identical afterwards.
#[test]
fn best_effort_returns_flagged_partial_results() {
    let g = three_communities();
    for engine in [EngineKind::Scalar, EngineKind::Adaptive] {
        let cfg = config(engine, 11).with_degrade(DegradeMode::BestEffort);
        let mut control = UgraphSession::new(&g, config(engine, 11)).unwrap();
        let baseline = control.solve(ClusterRequest::mcp(3)).unwrap();

        let (mut errors, mut partials, mut clean) = (0u32, 0u32, 0u32);
        for checks in 1u64.. {
            let mut session = UgraphSession::new(&g, cfg.clone()).unwrap();
            let rq = ClusterRequest::mcp(3).with_cancel_token(CancelToken::after_checks(checks));
            match session.solve(rq) {
                Err(e) => {
                    assert!(matches!(e, ClusterError::Cancelled(_)), "got {e}");
                    errors += 1;
                }
                Ok(r) => match r.interrupt {
                    Some(report) => {
                        assert!(
                            r.clustering.is_full(),
                            "a best-effort result must already be a full clustering"
                        );
                        assert!(
                            report.guesses_completed > 0,
                            "a full clustering in hand means at least one completed guess"
                        );
                        // The session survives a degraded solve untouched.
                        let again = session.solve(ClusterRequest::mcp(3)).unwrap();
                        assert_identical(&again, &baseline, "re-issue after best-effort");
                        partials += 1;
                    }
                    None => {
                        assert_identical(&r, &baseline, "token past the last poll");
                        clean += 1;
                        break; // later trip points can only repeat this outcome
                    }
                },
            }
            assert!(checks < 10_000, "cancellation token was never outrun");
        }
        assert!(errors > 0, "{engine:?}: no trip point hit the pre-clustering phase");
        assert!(partials > 0, "{engine:?}: no trip point produced a best-effort result");
        assert_eq!(clean, 1);
    }
}

/// Injected faults never degrade to a best-effort result — a fault is a
/// bug-shaped condition, not progress worth returning.
#[test]
fn faults_never_degrade_to_partial_results() {
    let g = three_communities();
    let cfg = config(EngineKind::Adaptive, 13).with_degrade(DegradeMode::BestEffort);
    let mut session = UgraphSession::new(&g, cfg).unwrap();
    let _guard = faults::install(FaultPlan::new().fail_always(FaultSite::PoolGrow));
    let err = session.solve(ClusterRequest::mcp(3)).expect_err("pool growth always fails");
    assert!(
        matches!(
            err,
            ClusterError::Sampling(SamplingError::FaultInjected { site: FaultSite::PoolGrow, .. })
        ),
        "got {err}"
    );
    assert!(err.interrupt_report().is_none(), "faults must not carry interrupt reports");
}

/// A ring with chords, large enough that two world-shards overflow the
/// tight budget used below and the pools must evict and regenerate
/// mid-solve.
fn ring_with_chords(n: u32) -> UncertainGraph {
    let mut b = GraphBuilder::new(n as usize);
    for u in 0..n {
        b.add_edge(u, (u + 1) % n, 0.9).unwrap();
        b.add_edge(u, (u + 7) % n, 0.3).unwrap();
    }
    b.build().unwrap()
}

/// Failing the first shard regeneration under a budget tight enough to
/// force eviction mid-solve returns a typed error with every reserved
/// byte rolled back (the ledger never exceeds the budget), and the
/// recovered session is bit-identical to a never-faulted control.
#[test]
fn shard_regen_fault_keeps_ledger_within_budget_and_recovers() {
    let g = ring_with_chords(200);
    const BUDGET: usize = 256 << 10;
    let cfg = ClusterConfig::default()
        .with_seed(7)
        .with_threads(1)
        .with_schedule(SampleSchedule::Fixed(1100))
        .with_memory_budget(BUDGET);

    let mut control = UgraphSession::new(&g, cfg.clone()).unwrap();
    let baseline = control.solve(ClusterRequest::mcp(4)).unwrap();
    assert!(
        control.stats().shards_regenerated > 0,
        "budget must force regeneration mid-solve for this test to bite"
    );

    let mut session = UgraphSession::new(&g, cfg).unwrap();
    let guard = faults::install(FaultPlan::new().fail_at(FaultSite::ShardRegen, 1));
    let err = session.solve(ClusterRequest::mcp(4)).expect_err("first regeneration must fail");
    assert!(faults::hits(FaultSite::ShardRegen) >= 1, "failpoint never fired");
    drop(guard);
    assert!(
        matches!(
            err,
            ClusterError::Sampling(SamplingError::FaultInjected {
                site: FaultSite::ShardRegen,
                hit: 1
            })
        ),
        "got {err}"
    );
    assert!(
        session.stats().bytes_held <= BUDGET,
        "failed regeneration leaked charges: {} bytes over the {BUDGET}-byte budget",
        session.stats().bytes_held
    );

    let recovered = session.solve(ClusterRequest::mcp(4)).unwrap();
    assert_identical(&recovered, &baseline, "re-issue after regeneration fault");
    assert!(session.stats().bytes_held <= BUDGET);
}

/// With a budget generous enough that nothing is ever evicted, the byte
/// ledger is a deterministic function of the worlds sampled and the rows
/// admitted — so a session that faulted on a row admission and then
/// recovered must hold *exactly* the bytes of a never-faulted control.
/// Any difference is a leaked (or double-rolled-back) charge.
#[test]
fn admission_fault_balances_the_ledger_exactly() {
    let g = three_communities();
    let cfg = config(EngineKind::Adaptive, 7).with_memory_budget(1 << 30);

    let mut control = UgraphSession::new(&g, cfg.clone()).unwrap();
    let baseline = control.solve(ClusterRequest::mcp(3)).unwrap();

    let mut session = UgraphSession::new(&g, cfg).unwrap();
    let guard = faults::install(FaultPlan::new().fail_at(FaultSite::BudgetAdmission, 1));
    let err = session.solve(ClusterRequest::mcp(3)).expect_err("first admission must fail");
    drop(guard);
    assert!(
        matches!(err, ClusterError::Sampling(SamplingError::FaultInjected { .. })),
        "got {err}"
    );

    let recovered = session.solve(ClusterRequest::mcp(3)).unwrap();
    assert_identical(&recovered, &baseline, "re-issue after admission fault");
    assert_eq!(
        session.stats().bytes_held,
        control.stats().bytes_held,
        "ledger of the recovered session diverged from the never-faulted control"
    );
}
