//! Property-based validation of the paper's theorems on
//! exhaustively-solvable instances, using the exact oracle so that the
//! guarantees must hold deterministically (no Monte-Carlo slack).

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use ugraph_cluster::brute::brute_force_opt;
use ugraph_cluster::hardness::{set_cover_to_mcp, SetCoverInstance};
use ugraph_cluster::{
    acp_with_oracle, avg_prob, mcp_with_oracle, min_partial, min_prob, AcpInvocation,
    ClusterConfig, GuessStrategy, MinPartialParams,
};
use ugraph_graph::{GraphBuilder, NodeId, UncertainGraph};
use ugraph_sampling::{ExactOracle, ExactOracleAdapter};

/// Random connected-ish small graph (n ≤ 8, ≤ 12 uncertain edges).
fn small_graph() -> impl Strategy<Value = UncertainGraph> {
    (4..=8u32).prop_flat_map(|n| {
        let spine = Just(n);
        let extra = proptest::collection::vec((0..n, 0..n, 0.1f64..=1.0), 0..6);
        (spine, extra, 0.2f64..=0.95).prop_map(|(n, extra, p_spine)| {
            let mut b = GraphBuilder::new(n as usize);
            // A spine keeps most instances connected so full clusterings exist.
            for i in 0..n - 1 {
                b.add_edge(i, i + 1, p_spine).unwrap();
            }
            for (u, v, p) in extra {
                if u != v {
                    b.add_edge(u, v, p).unwrap();
                }
            }
            b.build().unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// min-partial postconditions (Lemma-level semantics):
    /// covered nodes meet the threshold, centers are pinned, and when
    /// q ≤ p²_opt-min(k) the clustering covers every node (Lemma 2).
    #[test]
    fn min_partial_postconditions(g in small_graph(), k in 1usize..4, seed in any::<u64>()) {
        let n = g.num_nodes();
        prop_assume!(k < n);
        let exact = ExactOracle::new(&g).unwrap();
        let opt = brute_force_opt(&exact, k).unwrap();
        let mut oracle = ExactOracleAdapter::new(exact);
        let mut rng = SmallRng::seed_from_u64(seed);

        for q in [0.9, 0.5, 0.2] {
            let pc = min_partial(&mut oracle, &MinPartialParams::simple(k, q), &mut rng).unwrap();
            // Covered nodes meet the threshold.
            for u in 0..n {
                if pc.clustering.cluster_of(NodeId::from_index(u)).is_some() {
                    prop_assert!(pc.assign_probs[u] >= q - 1e-12);
                }
            }
            // Centers pinned to their own clusters.
            for (i, &c) in pc.clustering.centers().iter().enumerate() {
                prop_assert_eq!(pc.clustering.cluster_of(c), Some(i));
            }
            prop_assert!(pc.clustering.validate().is_ok());
            // Lemma 2: q ≤ p²_opt ⇒ full coverage.
            if q <= opt.best_min_prob * opt.best_min_prob {
                prop_assert!(
                    pc.clustering.is_full(),
                    "Lemma 2 violated: q = {q} ≤ p²_opt = {} but {} outliers",
                    opt.best_min_prob * opt.best_min_prob,
                    pc.clustering.outliers().len()
                );
            }
        }
    }

    /// Theorem 3: MCP with exact probabilities returns
    /// min-prob ≥ p²_opt-min(k)/(1+γ), and never beats the optimum.
    #[test]
    fn mcp_theorem3_bound(g in small_graph(), k in 1usize..4, seed in any::<u64>()) {
        let n = g.num_nodes();
        prop_assume!(k < n);
        let exact = ExactOracle::new(&g).unwrap();
        let opt = brute_force_opt(&exact, k).unwrap();
        prop_assume!(opt.best_min_prob > 1e-3); // needs a feasible clustering
        let cfg = ClusterConfig::default().with_seed(seed);
        let mut oracle = ExactOracleAdapter::new(ExactOracle::new(&g).unwrap());
        let r = mcp_with_oracle(&mut oracle, k, &cfg).unwrap();
        // Evaluate truly (not via the algorithm's own estimate).
        let mut eval = ExactOracleAdapter::new(exact);
        let achieved = min_prob(&mut eval, &r.clustering).unwrap();
        let bound = opt.best_min_prob * opt.best_min_prob / (1.0 + cfg.gamma);
        prop_assert!(
            achieved >= bound - 1e-9,
            "Theorem 3 violated: achieved {achieved} < bound {bound} (opt {})",
            opt.best_min_prob
        );
        prop_assert!(achieved <= opt.best_min_prob + 1e-9, "beat the optimum?!");
    }

    /// Same bound under the Geometric (pseudocode-faithful) strategy.
    #[test]
    fn mcp_theorem3_geometric(g in small_graph(), k in 1usize..3, seed in any::<u64>()) {
        let n = g.num_nodes();
        prop_assume!(k < n);
        let exact = ExactOracle::new(&g).unwrap();
        let opt = brute_force_opt(&exact, k).unwrap();
        prop_assume!(opt.best_min_prob > 1e-3);
        let cfg = ClusterConfig::default()
            .with_seed(seed)
            .with_guess(GuessStrategy::Geometric);
        let mut oracle = ExactOracleAdapter::new(ExactOracle::new(&g).unwrap());
        let r = mcp_with_oracle(&mut oracle, k, &cfg).unwrap();
        let mut eval = ExactOracleAdapter::new(exact);
        let achieved = min_prob(&mut eval, &r.clustering).unwrap();
        let bound = opt.best_min_prob * opt.best_min_prob / (1.0 + cfg.gamma);
        prop_assert!(achieved >= bound - 1e-9);
    }

    /// Theorem 4: ACP with exact probabilities returns
    /// avg-prob ≥ (p_opt-avg(k)/((1+γ)·H(n)))³, and never beats the optimum.
    #[test]
    fn acp_theorem4_bound(g in small_graph(), k in 1usize..4, seed in any::<u64>()) {
        let n = g.num_nodes();
        prop_assume!(k < n);
        let exact = ExactOracle::new(&g).unwrap();
        let opt = brute_force_opt(&exact, k).unwrap();
        for invocation in [AcpInvocation::Theory, AcpInvocation::Practical] {
            let cfg = ClusterConfig::default()
                .with_seed(seed)
                .with_acp_invocation(invocation);
            let mut oracle = ExactOracleAdapter::new(ExactOracle::new(&g).unwrap());
            let r = acp_with_oracle(&mut oracle, k, &cfg).unwrap();
            let mut eval = ExactOracleAdapter::new(ExactOracle::new(&g).unwrap());
            let achieved = avg_prob(&mut eval, &r.clustering).unwrap();
            let h = ugraph_sampling::harmonic(n);
            let bound = (opt.best_avg_prob / ((1.0 + cfg.gamma) * h)).powi(3);
            prop_assert!(
                achieved >= bound - 1e-9,
                "Theorem 4 violated ({invocation:?}): achieved {achieved} < bound {bound}"
            );
            prop_assert!(achieved <= opt.best_avg_prob + 1e-9, "beat the optimum?!");
        }
    }

    /// Theorem 5 (depth-limited MCP): with exact d-connection
    /// probabilities, min-prob_d ≥ p²_opt-min(k, ⌊d/2⌋)/(1+γ).
    #[test]
    fn mcp_theorem5_depth_bound(g in small_graph(), k in 2usize..4, d in 2u32..5, seed in any::<u64>()) {
        let n = g.num_nodes();
        prop_assume!(k < n);
        let half = ExactOracle::with_depth(&g, d / 2).unwrap();
        let opt_half = brute_force_opt(&half, k).unwrap();
        prop_assume!(opt_half.best_min_prob > 1e-3);
        let cfg = ClusterConfig::default().with_seed(seed);
        // Oracle with selection and cover disks both at depth d (Lemma 5).
        let full = ExactOracle::with_depth(&g, d).unwrap();
        let mut oracle = ExactOracleAdapter::new(full);
        let r = mcp_with_oracle(&mut oracle, k, &cfg).unwrap();
        let mut eval = ExactOracleAdapter::new(ExactOracle::with_depth(&g, d).unwrap());
        let achieved = min_prob(&mut eval, &r.clustering).unwrap();
        let bound = opt_half.best_min_prob * opt_half.best_min_prob / (1.0 + cfg.gamma);
        prop_assert!(
            achieved >= bound - 1e-9,
            "Theorem 5 violated: achieved {achieved} < bound {bound} at d = {d}"
        );
    }

    /// Theorem 2's reduction: on random small Set-Cover instances, the
    /// gadget admits a k-clustering with min-prob ≥ p̂ iff a size-k cover
    /// exists.
    #[test]
    fn set_cover_reduction_equivalence(
        sets in proptest::collection::vec(
            proptest::collection::btree_set(0usize..4, 1..4), 2..4),
        k in 1usize..3,
    ) {
        let universe = 4;
        let inst = SetCoverInstance {
            universe,
            sets: sets.into_iter().map(|s| s.into_iter().collect()).collect(),
        };
        prop_assume!(inst.every_element_coverable());
        let (g, p_hat) = set_cover_to_mcp(&inst);
        let oracle = ExactOracle::new(&g).unwrap();
        let opt = brute_force_opt(&oracle, k).unwrap();
        // Relative tolerance: the exact oracle reassembles p̂ from 2^u world
        // probabilities, so equality holds only up to float round-off. The
        // no-cover case sits orders of magnitude below p̂ (≈ N·p̂²), far
        // outside the tolerance band.
        prop_assert_eq!(
            opt.best_min_prob >= p_hat * (1.0 - 1e-9),
            inst.has_cover_of_size(k),
            "reduction equivalence broken: min-prob {} vs p̂ {}",
            opt.best_min_prob, p_hat
        );
    }

    /// Monte-Carlo MCP on well-separated instances agrees with the exact
    /// optimum's cluster structure (end-to-end sanity of §4's integration).
    #[test]
    fn mc_mcp_respects_strong_structure(seed in any::<u64>(), p_in in 0.85f64..0.99) {
        // Two 4-cliques bridged weakly.
        let mut b = GraphBuilder::new(8);
        for base in [0u32, 4] {
            for i in base..base + 4 {
                for j in (i + 1)..base + 4 {
                    b.add_edge(i, j, p_in).unwrap();
                }
            }
        }
        b.add_edge(3, 4, 0.02).unwrap();
        let g = b.build().unwrap();
        let cfg = ClusterConfig::default().with_seed(seed);
        let r = ugraph_cluster::mcp(&g, 2, &cfg).unwrap();
        let side0 = r.clustering.cluster_of(NodeId(0));
        for u in 1..4u32 {
            prop_assert_eq!(r.clustering.cluster_of(NodeId(u)), side0);
        }
        let side1 = r.clustering.cluster_of(NodeId(4));
        prop_assert_ne!(side0, side1);
        for u in 5..8u32 {
            prop_assert_eq!(r.clustering.cluster_of(NodeId(u)), side1);
        }
    }
}
