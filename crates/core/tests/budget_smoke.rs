//! Budget-constrained smoke test (run explicitly in CI): a Krogan-like
//! instance solved through a session whose memory budget is far below the
//! pool footprint, forcing shard eviction and regeneration, must produce
//! output identical to an unbounded session while honoring the byte
//! limit.

use ugraph_cluster::{ClusterConfig, ClusterRequest, UgraphSession};
use ugraph_datasets::DatasetSpec;

#[test]
fn tiny_budget_evicts_regenerates_and_matches_unbounded_output() {
    let d = DatasetSpec::Krogan.generate(2);
    let graph = &d.graph;
    // Fixed sample count keeps the smoke fast in debug builds; 1100
    // samples span two 1024-world shard groups.
    let base = ClusterConfig::default()
        .with_seed(7)
        .with_threads(1)
        .with_schedule(ugraph_sampling::SampleSchedule::Fixed(1100));
    const BUDGET: usize = 512 << 10; // 512 KiB, far below the pool footprint

    let mut unbounded = UgraphSession::new(graph, base.clone()).expect("unbounded session");
    let mut tight =
        UgraphSession::new(graph, base.with_memory_budget(BUDGET)).expect("budgeted session");

    for k in [3usize, 5] {
        let want = unbounded.solve(ClusterRequest::mcp(k)).expect("unbounded mcp");
        let got = tight.solve(ClusterRequest::mcp(k)).expect("budgeted mcp");
        assert_eq!(got.clustering, want.clustering, "k = {k}: clustering diverged under budget");
        assert_eq!(got.assign_probs, want.assign_probs, "k = {k}: probabilities diverged");
        assert_eq!((got.guesses, got.samples_used), (want.guesses, want.samples_used));
    }
    let clustering = unbounded.solve(ClusterRequest::mcp(3)).expect("resolve").clustering;
    let want_eval = unbounded.evaluate(&clustering);
    let got_eval = tight.evaluate(&clustering);
    assert_eq!(got_eval, want_eval, "evaluation diverged under budget");

    let free = unbounded.stats();
    let stats = tight.stats();
    assert_eq!(free.shards_evicted, 0, "unbounded session must not evict");
    assert!(stats.shards_evicted > 0, "512 KiB budget never evicted a shard");
    assert!(stats.shards_regenerated > 0, "evicted shards were never regenerated");
    assert!(
        stats.bytes_held <= BUDGET,
        "session holds {} bytes over the {BUDGET}-byte budget",
        stats.bytes_held
    );
    println!(
        "budget smoke: {} bytes held (limit {BUDGET}), {} shards evicted, {} regenerated",
        stats.bytes_held, stats.shards_evicted, stats.shards_regenerated
    );
}
