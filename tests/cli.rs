//! Integration tests for the `ugraph` command-line binary: generate →
//! stats → cluster → evaluate round trips through real files.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ugraph"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ugraph-cli-test-{}-{name}", std::process::id()));
    p
}

/// Writes a small graph file and returns its path.
fn small_graph_file() -> PathBuf {
    let path = tmp("graph.txt");
    let text = "# nodes: 6\n0 1 0.9\n1 2 0.9\n0 2 0.9\n3 4 0.9\n4 5 0.9\n3 5 0.9\n2 3 0.05\n";
    std::fs::write(&path, text).unwrap();
    path
}

#[test]
fn stats_reports_sizes() {
    let graph = small_graph_file();
    let out = bin().args(["stats", "--input"]).arg(&graph).output().unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("n=6"), "{stdout}");
    assert!(stdout.contains("m=7"), "{stdout}");
}

#[test]
fn cluster_then_evaluate_roundtrip() {
    let graph = small_graph_file();
    let clustering = tmp("clustering.tsv");
    let out = bin()
        .args(["cluster", "--algo", "mcp", "--k", "2", "--seed", "3", "--output"])
        .arg(&clustering)
        .arg("--input")
        .arg(&graph)
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    let out = bin()
        .args(["evaluate", "--samples", "400", "--clustering"])
        .arg(&clustering)
        .arg("--input")
        .arg(&graph)
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("p_min"), "{stdout}");
    // Two reliable triangles split by a weak bridge: p_min must be high.
    let pmin_line = stdout.lines().find(|l| l.starts_with("p_min")).unwrap();
    let pmin: f64 = pmin_line.split_whitespace().nth(1).unwrap().parse().unwrap();
    assert!(pmin > 0.7, "p_min {pmin} too low — wrong clusters?");
}

#[test]
fn generate_and_evaluate_with_ground_truth() {
    let graph = tmp("krogan.txt");
    let gt = tmp("gt.txt");
    let out = bin()
        .args(["generate", "--dataset", "krogan", "--seed", "2", "--output"])
        .arg(&graph)
        .arg("--ground-truth")
        .arg(&gt)
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(graph.exists() && gt.exists());

    // Cluster with KPT (fast, no k needed) and evaluate against the truth.
    let clustering = tmp("krogan-kpt.tsv");
    let out = bin()
        .args(["cluster", "--algo", "kpt", "--output"])
        .arg(&clustering)
        .arg("--input")
        .arg(&graph)
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    let out = bin()
        .args(["evaluate", "--samples", "64", "--clustering"])
        .arg(&clustering)
        .arg("--input")
        .arg(&graph)
        .arg("--ground-truth")
        .arg(&gt)
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("TPR"), "{stdout}");
    assert!(stdout.contains("F1"), "{stdout}");
}

#[test]
fn knn_query() {
    let graph = small_graph_file();
    let out = bin()
        .args(["knn", "--source", "0", "--k", "3", "--samples", "500", "--input"])
        .arg(&graph)
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "{stdout}");
    // Triangle partners of node 0 come first.
    let first: u32 = lines[0].split('\t').next().unwrap().parse().unwrap();
    assert!(first == 1 || first == 2);
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn missing_required_flag_fails() {
    let out = bin().args(["cluster", "--algo", "mcp"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--input"), "{stderr}");
}

#[test]
fn engine_flag_selects_count_identical_backends() {
    let graph = small_graph_file();
    let mut outputs = Vec::new();
    for engine in ["scalar", "bitparallel", "adaptive"] {
        let path = tmp(&format!("clustering-{engine}.tsv"));
        let out = bin()
            .args(["cluster", "--algo", "mcp", "--k", "2", "--seed", "5", "--engine", engine])
            .arg("--output")
            .arg(&path)
            .arg("--input")
            .arg(&graph)
            .output()
            .unwrap();
        assert!(out.status.success(), "{engine}: {}", String::from_utf8_lossy(&out.stderr));
        outputs.push(std::fs::read_to_string(&path).unwrap());
    }
    assert_eq!(outputs[0], outputs[1], "scalar vs bitparallel clusterings differ");
    assert_eq!(outputs[0], outputs[2], "scalar vs adaptive clusterings differ");

    let out = bin()
        .args(["cluster", "--algo", "mcp", "--k", "2", "--engine", "gpu", "--input"])
        .arg(&graph)
        .output()
        .unwrap();
    assert!(!out.status.success(), "bogus engine name must be rejected");
}

#[test]
fn sweep_reports_finalization_columns() {
    let graph = small_graph_file();
    let out = bin()
        .args([
            "sweep",
            "--algo",
            "mcp",
            "--k-min",
            "2",
            "--k-max",
            "3",
            "--seed",
            "2",
            "--samples",
            "64",
            "--engine",
            "adaptive",
        ])
        .arg("--input")
        .arg(&graph)
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fblk") && stdout.contains("lblq"), "{stdout}");
    // The adaptive sweep must actually have finalized blocks and served
    // label queries somewhere in the table.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("finalized"), "{stderr}");
}
