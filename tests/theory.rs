//! Cross-crate validation of the paper's analytical claims on concrete
//! instances (complementing the per-crate proptest suites).

use ugraph::cluster::brute::brute_force_opt;
use ugraph::cluster::{acp_with_oracle, avg_prob, mcp_with_oracle, min_prob};
use ugraph::prelude::*;
use ugraph::sampling::{harmonic, ExactOracle, ExactOracleAdapter};

/// Wheel-ish test graph: hub 0 connected to 6 rim nodes, rim cycle.
fn wheel(p_spoke: f64, p_rim: f64) -> UncertainGraph {
    let mut b = GraphBuilder::new(7);
    for v in 1..7u32 {
        b.add_edge(0, v, p_spoke).unwrap();
    }
    for v in 1..7u32 {
        let w = if v == 6 { 1 } else { v + 1 };
        b.add_edge(v, w, p_rim).unwrap();
    }
    b.build().unwrap()
}

#[test]
fn theorem3_holds_on_wheels() {
    for (ps, pr) in [(0.9, 0.2), (0.5, 0.5), (0.3, 0.8)] {
        let g = wheel(ps, pr);
        for k in 1..4usize {
            let exact = ExactOracle::new(&g).unwrap();
            let opt = brute_force_opt(&exact, k).unwrap();
            let mut oracle = ExactOracleAdapter::new(ExactOracle::new(&g).unwrap());
            let cfg = ClusterConfig::default().with_seed(k as u64);
            let r = mcp_with_oracle(&mut oracle, k, &cfg).unwrap();
            let mut eval = ExactOracleAdapter::new(exact);
            let achieved = min_prob(&mut eval, &r.clustering).unwrap();
            let bound = opt.best_min_prob.powi(2) / 1.1;
            assert!(achieved >= bound - 1e-9, "wheel({ps},{pr}) k={k}: {achieved} < {bound}");
            assert!(achieved <= opt.best_min_prob + 1e-9);
        }
    }
}

#[test]
fn theorem4_holds_on_wheels() {
    for (ps, pr) in [(0.9, 0.2), (0.4, 0.6)] {
        let g = wheel(ps, pr);
        for k in 1..4usize {
            let exact = ExactOracle::new(&g).unwrap();
            let opt = brute_force_opt(&exact, k).unwrap();
            let mut oracle = ExactOracleAdapter::new(ExactOracle::new(&g).unwrap());
            let cfg = ClusterConfig::default().with_seed(k as u64);
            let r = acp_with_oracle(&mut oracle, k, &cfg).unwrap();
            let mut eval = ExactOracleAdapter::new(exact);
            let achieved = avg_prob(&mut eval, &r.clustering).unwrap();
            let bound = (opt.best_avg_prob / (1.1 * harmonic(7))).powi(3);
            assert!(achieved >= bound - 1e-9, "wheel({ps},{pr}) k={k}: {achieved} < {bound}");
        }
    }
}

#[test]
fn monte_carlo_mcp_close_to_exact_oracle_result() {
    // With ample samples the MC pipeline should land within estimation
    // noise of the exact-oracle pipeline's objective value.
    let g = wheel(0.8, 0.4);
    let k = 2;
    let cfg = ClusterConfig::default().with_seed(6).with_schedule(SampleSchedule::Fixed(4000));
    let mc = mcp(&g, k, &cfg).unwrap();
    let mut oracle = ExactOracleAdapter::new(ExactOracle::new(&g).unwrap());
    let ex = mcp_with_oracle(&mut oracle, k, &ClusterConfig::default()).unwrap();
    let mut eval_a = ExactOracleAdapter::new(ExactOracle::new(&g).unwrap());
    let mut eval_b = ExactOracleAdapter::new(ExactOracle::new(&g).unwrap());
    let a = min_prob(&mut eval_a, &mc.clustering).unwrap();
    let b = min_prob(&mut eval_b, &ex.clustering).unwrap();
    assert!((a - b).abs() < 0.15, "MC result {a} far from exact-oracle result {b}");
}

#[test]
fn depth_theorems_on_certain_paths() {
    // On a certain path of 7 nodes: p_opt-min(k=2, d=⌊3/2⌋=1) covers via
    // centers with 1-balls: 2 centers × 3 nodes < 7, so p_opt(2,1) = 0.
    // With d = 3 full depth, k = 2 centers at positions 1 and 4(ish) cover
    // everything within 3 hops: the depth-limited MCP must find pmin = 1.
    let mut b = GraphBuilder::new(7);
    for i in 0..6 {
        b.add_edge(i, i + 1, 1.0).unwrap();
    }
    let g = b.build().unwrap();
    let cfg = ClusterConfig::default().with_seed(1);
    let r = mcp_depth(&g, 2, 3, &cfg).unwrap();
    assert!(r.min_prob_estimate >= 0.999);
    // Eq. 7 objective evaluated with the exact depth oracle agrees.
    let mut eval = ExactOracleAdapter::new(ExactOracle::with_depth(&g, 3).unwrap());
    assert!((min_prob(&mut eval, &r.clustering).unwrap() - 1.0).abs() < 1e-9);
}

#[test]
fn hardness_gadget_scales() {
    // Build a slightly larger set-cover gadget and verify both directions
    // of Theorem 2 via brute force.
    let inst = ugraph::cluster::hardness::SetCoverInstance {
        universe: 4,
        sets: vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]],
    };
    let (g, p_hat) = ugraph::cluster::hardness::set_cover_to_mcp(&inst);
    let oracle = ExactOracle::new(&g).unwrap();
    // Cover of size 2 exists ({0,1},{2,3}); of size 1 does not.
    let opt1 = brute_force_opt(&oracle, 1).unwrap();
    assert!(opt1.best_min_prob < p_hat * (1.0 - 1e-9));
    let opt2 = brute_force_opt(&oracle, 2).unwrap();
    assert!(opt2.best_min_prob >= p_hat * (1.0 - 1e-9));
}

#[test]
fn acp_never_below_k_over_n_by_much() {
    // popt-avg(k) ≥ k/n (centers have probability 1); the returned
    // clustering's φ must respect the cubic bound on that floor at least.
    let g = wheel(0.2, 0.2);
    let mut oracle = ExactOracleAdapter::new(ExactOracle::new(&g).unwrap());
    let r = acp_with_oracle(&mut oracle, 3, &ClusterConfig::default()).unwrap();
    let mut eval = ExactOracleAdapter::new(ExactOracle::new(&g).unwrap());
    let achieved = avg_prob(&mut eval, &r.clustering).unwrap();
    assert!(achieved >= 3.0 / 7.0 * 0.9, "achieved {achieved}");
}
