//! Integration tests for the reliability query primitives against the
//! clustering machinery (cross-crate consistency).

use ugraph::cluster::{mcp, ClusterConfig};
use ugraph::prelude::*;
use ugraph::sampling::{
    most_reliable_source, reliability_knn, ComponentPool, ExactOracle, SourceObjective,
};

fn two_communities() -> UncertainGraph {
    let mut b = GraphBuilder::new(8);
    for base in [0u32, 4] {
        for i in base..base + 4 {
            for j in (i + 1)..base + 4 {
                b.add_edge(i, j, 0.85).unwrap();
            }
        }
    }
    b.add_edge(3, 4, 0.05).unwrap();
    b.build().unwrap()
}

#[test]
fn knn_neighbors_are_community_mates() {
    let g = two_communities();
    let mut pool = ComponentPool::new(&g, 3, 0);
    pool.ensure(2000);
    let knn = reliability_knn(&mut pool, NodeId(0), 3);
    let ids: Vec<u32> = knn.iter().map(|(n, _)| n.0).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, vec![1, 2, 3], "0's 3-NN must be its own community, got {ids:?}");
}

#[test]
fn knn_agrees_with_exact_order() {
    // Star with distinct spoke probabilities: exact order is known.
    let mut b = GraphBuilder::new(4);
    b.add_edge(0, 1, 0.7).unwrap();
    b.add_edge(0, 2, 0.4).unwrap();
    b.add_edge(0, 3, 0.2).unwrap();
    let g = b.build().unwrap();
    let exact = ExactOracle::new(&g).unwrap();
    let mut pool = ComponentPool::new(&g, 9, 0);
    pool.ensure(6000);
    let knn = reliability_knn(&mut pool, NodeId(0), 3);
    let exact_order: Vec<u32> = {
        let mut v: Vec<(u32, f64)> =
            (1..4u32).map(|u| (u, exact.pair_probability(NodeId(0), NodeId(u)))).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v.into_iter().map(|(u, _)| u).collect()
    };
    let got: Vec<u32> = knn.iter().map(|(n, _)| n.0).collect();
    assert_eq!(got, exact_order);
}

#[test]
fn mcp_centers_are_reliable_sources_for_their_clusters() {
    // The most-reliable-source query with candidates = all nodes of a
    // cluster should rate the MCP center at least as well as most members
    // (it was chosen to cover them).
    let g = two_communities();
    let r = mcp(&g, 2, &ClusterConfig::default().with_seed(5)).unwrap();
    let mut pool = ComponentPool::new(&g, 77, 0);
    pool.ensure(1500);
    for (i, members) in r.clustering.clusters().iter().enumerate() {
        let center = r.clustering.center(i);
        let (best, stat) =
            most_reliable_source(&mut pool, members, members, SourceObjective::MinToTargets)
                .unwrap();
        let center_stat = {
            let mut counts = vec![0u32; g.num_nodes()];
            pool.counts_from_center(center, &mut counts);
            members
                .iter()
                .map(|m| counts[m.index()] as f64 / pool.num_samples() as f64)
                .fold(f64::INFINITY, f64::min)
        };
        // Within estimation noise the center competes with the best source.
        assert!(
            center_stat >= stat - 0.1,
            "cluster {i}: center {center} stat {center_stat} vs best {best} stat {stat}"
        );
    }
}
