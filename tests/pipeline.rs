//! End-to-end pipelines across all crates: generate → cluster → evaluate.
//!
//! Kept small enough to run in debug builds; the full-scale runs live in
//! the `ugraph-bench` harness.

use ugraph::baselines::{gmm, kpt, mcl, KptConfig, MclConfig};
use ugraph::prelude::*;
use ugraph::sampling::ComponentPool;

/// A small planted-partition instance with strong separable structure.
fn small_blocks() -> (UncertainGraph, Vec<usize>) {
    let cfg = ugraph::datasets::PlantedPartitionConfig {
        blocks: 4,
        block_size: 15,
        p_intra: 0.6,
        p_inter: 0.01,
        intra_dist: ProbDistribution::Uniform(0.7, 1.0),
        inter_dist: ProbDistribution::Uniform(0.05, 0.2),
    };
    ugraph::datasets::planted_partition(&cfg, 7)
}

/// Small PPI-like instance with ground truth.
fn small_ppi() -> ugraph::datasets::PpiDataset {
    ugraph::datasets::ppi_like(&ugraph::datasets::PpiConfig {
        num_proteins: 250,
        num_complexes: 15,
        complex_size_range: (4, 8),
        intra_density: 0.8,
        background_edges: 120,
        prob_dist: ProbDistribution::KroganMixture,
        intra_prob_dist: ProbDistribution::Uniform(0.85, 1.0),
        seed: 3,
    })
}

#[test]
fn full_pipeline_all_algorithms_agree_on_separable_structure() {
    let (g, blocks) = small_blocks();
    let k = 4;
    let cfg = ClusterConfig::default().with_seed(1);

    let mcp_r = mcp(&g, k, &cfg).expect("mcp");
    let acp_r = acp(&g, k, &cfg).expect("acp");
    let gmm_r = gmm(&g, k, 1).expect("gmm");

    // Every algorithm should reconstruct the planted blocks on this
    // strongly-separated instance.
    for (name, c) in [("mcp", &mcp_r.clustering), ("acp", &acp_r.clustering), ("gmm", &gmm_r)] {
        assert!(c.is_full(), "{name} left outliers");
        assert_eq!(c.num_clusters(), k);
        // All nodes of one block share a cluster.
        for b in 0..4usize {
            let members: Vec<_> = (0..60).filter(|&u| blocks[u] == b).collect();
            let first = c.cluster_of(NodeId(members[0] as u32));
            for &u in &members[1..] {
                assert_eq!(c.cluster_of(NodeId(u as u32)), first, "{name} split block {b}");
            }
        }
    }
}

#[test]
fn mcp_dominates_baselines_on_pmin() {
    let (g, _) = small_blocks();
    let k = 4;
    let cfg = ClusterConfig::default().with_seed(5);
    let mcp_r = mcp(&g, k, &cfg).expect("mcp");
    let gmm_r = gmm(&g, k, 99).expect("gmm");
    let mcl_r = mcl(&g, &MclConfig::with_inflation(1.4));

    let mut pool = ComponentPool::new(&g, 4242, 1);
    pool.ensure(600);
    let q_mcp = clustering_quality(&mut pool, &mcp_r.clustering);
    let q_gmm = clustering_quality(&mut pool, &gmm_r);
    let q_mcl = clustering_quality(&mut pool, &mcl_r.clustering);
    // MCP optimizes p_min: allow a small estimation slack but require
    // dominance (paper Figure 1, top row).
    assert!(q_mcp.p_min >= q_gmm.p_min - 0.05, "mcp p_min {} < gmm {}", q_mcp.p_min, q_gmm.p_min);
    assert!(q_mcp.p_min >= q_mcl.p_min - 0.05, "mcp p_min {} < mcl {}", q_mcp.p_min, q_mcl.p_min);
}

#[test]
fn quality_and_avpr_are_consistent_across_metrics() {
    let (g, _) = small_blocks();
    let cfg = ClusterConfig::default().with_seed(2);
    let r = acp(&g, 4, &cfg).expect("acp");
    let mut pool = ComponentPool::new(&g, 77, 1);
    pool.ensure(400);
    let q = clustering_quality(&mut pool, &r.clustering);
    let a = avpr(&mut pool, &r.clustering);
    assert!(q.p_avg >= q.p_min);
    assert!(a.inner > a.outer, "inner {} should exceed outer {}", a.inner, a.outer);
    assert!((0.0..=1.0).contains(&a.inner));
    assert!((0.0..=1.0).contains(&a.outer));
}

#[test]
fn ppi_prediction_pipeline() {
    let d = small_ppi();
    let lcc = largest_connected_component(&d.graph);
    let to_local = lcc.original_to_local(d.graph.num_nodes());
    let complexes: Vec<Vec<NodeId>> = d
        .complexes
        .iter()
        .map(|c| c.iter().filter_map(|&p| to_local[p.index()]).collect::<Vec<_>>())
        .filter(|c: &Vec<NodeId>| c.len() >= 2)
        .collect();
    assert!(!complexes.is_empty());

    let cfg = ClusterConfig::default().with_seed(9);
    let k = (complexes.len() * 2).min(lcc.graph.num_nodes() - 1);
    let r = mcp_depth(&lcc.graph, k, 4, &cfg).expect("depth-limited mcp");
    let m = confusion(&r.clustering, &complexes);
    // Planted complexes are dense and reliable: the clustering must beat
    // random guessing by a wide margin.
    assert!(m.tpr() > 0.2, "TPR {}", m.tpr());
    assert!(m.fpr() < 0.5, "FPR {}", m.fpr());

    // KPT runs on the same input and produces some valid clustering.
    let kc = kpt(&lcc.graph, &KptConfig::default());
    assert!(kc.validate().is_ok());
    let km = confusion(&kc, &complexes);
    assert!(km.fpr() <= 1.0);
}

#[test]
fn seeded_runs_are_bit_reproducible_end_to_end() {
    let (g, _) = small_blocks();
    let cfg = ClusterConfig::default().with_seed(123).with_threads(2);
    let a = mcp(&g, 4, &cfg).expect("mcp a");
    let b = mcp(&g, 4, &cfg).expect("mcp b");
    assert_eq!(a.clustering, b.clustering);
    assert_eq!(a.min_prob_estimate, b.min_prob_estimate);
    assert_eq!(a.final_q, b.final_q);
    // Thread count must not change results either.
    let c = mcp(&g, 4, &cfg.clone().with_threads(1)).expect("mcp c");
    assert_eq!(a.clustering, c.clustering);
}

#[test]
fn disconnected_input_handled_consistently() {
    // Two components; k = 3 splits one of them.
    let mut b = GraphBuilder::new(20);
    for i in 0..9u32 {
        b.add_edge(i, i + 1, 0.9).unwrap();
    }
    for i in 10..19u32 {
        b.add_edge(i, i + 1, 0.9).unwrap();
    }
    let g = b.build().unwrap();
    let cfg = ClusterConfig::default().with_seed(4);
    let r = mcp(&g, 3, &cfg).expect("mcp must handle k > #components");
    assert!(r.clustering.is_full());
    // No cluster spans the two components.
    for cluster in r.clustering.clusters() {
        let left = cluster.iter().any(|u| u.0 < 10);
        let right = cluster.iter().any(|u| u.0 >= 10);
        assert!(!(left && right), "cluster spans disconnected components");
    }
    // ACP likewise.
    let r = acp(&g, 3, &cfg).expect("acp");
    assert!(r.clustering.is_full());
}

#[test]
fn edge_list_roundtrip_preserves_clustering_behavior() {
    let (g, _) = small_blocks();
    let mut buf = Vec::new();
    ugraph::graph::io::write_edge_list(&g, &mut buf).unwrap();
    let g2 = ugraph::graph::io::read_edge_list(buf.as_slice()).unwrap();
    let cfg = ClusterConfig::default().with_seed(11);
    let a = mcp(&g, 4, &cfg).unwrap();
    let b = mcp(&g2, 4, &cfg).unwrap();
    assert_eq!(a.clustering, b.clustering, "clustering must survive serialization");
}

#[test]
fn dataset_specs_cluster_without_error() {
    // Tiny DBLP-like end to end.
    let d = DatasetSpec::Dblp { scale: 0.002 }.generate(2);
    let k = 8;
    let cfg = ClusterConfig::default().with_seed(3);
    let r = mcp(&d.graph, k, &cfg).expect("mcp on DBLP-like");
    assert!(r.clustering.is_full());
    let r = acp(&d.graph, k, &cfg).expect("acp on DBLP-like");
    assert!(r.clustering.is_full());
}
